package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunABMTrace(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-preset", "slashdot", "-scale", "0.02", "-k", "15", "-cautious", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"policy:  abm", "final:", "requests sent"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAllPolicies(t *testing.T) {
	for _, policy := range []string{"abm", "greedy", "maxdegree", "pagerank", "random"} {
		var buf bytes.Buffer
		err := run([]string{
			"-preset", "slashdot", "-scale", "0.02", "-k", "10",
			"-cautious", "5", "-policy", policy,
		}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(buf.String(), "final:") {
			t.Errorf("%s: no final line:\n%s", policy, buf.String())
		}
	}
}

func TestUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policy", "oracle"}, &buf); err == nil {
		t.Error("unknown policy: want error")
	}
}

func TestVerboseShowsRejections(t *testing.T) {
	// With verbose on, the number of printed request lines must equal k
	// (every request shown, accepted or not).
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "slashdot", "-scale", "0.02", "-k", "12",
		"-cautious", "5", "-v",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(l, "#") {
			lines++
		}
	}
	if lines != 12 {
		t.Errorf("verbose printed %d request lines, want 12", lines)
	}
}

func TestBadPreset(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-preset", "bad"}, &buf); err == nil {
		t.Error("bad preset: want error")
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "slashdot", "-scale", "0.02", "-k", "10",
		"-cautious", "5", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Preset  string  `json:"preset"`
		Budget  int     `json:"budget"`
		Benefit float64 `json:"benefit"`
		Steps   []struct {
			User     int     `json:"User"`
			Accepted bool    `json:"Accepted"`
			Gain     float64 `json:"Gain"`
		} `json:"steps"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Preset != "slashdot" || decoded.Budget != 10 {
		t.Errorf("decoded %+v", decoded)
	}
	if len(decoded.Steps) != 10 {
		t.Errorf("steps = %d", len(decoded.Steps))
	}
}

func TestRepeatedRunsSummary(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "slashdot", "-scale", "0.02", "-k", "10",
		"-cautious", "5", "-runs", "4", "-workers", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"4 realizations", "2 workers", "benefit: mean", "friends: mean", "timing:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRepeatedRunsDeterministicAcrossWorkers(t *testing.T) {
	// The cell scheduler guarantees the same records regardless of pool
	// size, so the printed summary must be identical too.
	summary := func(workers string) string {
		var buf bytes.Buffer
		err := run([]string{
			"-preset", "slashdot", "-scale", "0.02", "-k", "10",
			"-cautious", "5", "-policy", "random", "-runs", "6", "-workers", workers,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		// Strip the timing line, which is naturally nondeterministic.
		var lines []string
		for _, l := range strings.Split(buf.String(), "\n") {
			if !strings.HasPrefix(l, "timing:") {
				lines = append(lines, l)
			}
		}
		return strings.Join(lines, "\n")
	}
	serial, parallel := summary("1"), summary("4")
	// Worker count appears in the header; normalize it before comparing.
	serial = strings.ReplaceAll(serial, "1 workers", "N workers")
	parallel = strings.ReplaceAll(parallel, "4 workers", "N workers")
	if serial != parallel {
		t.Errorf("summary differs across worker counts:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", serial, parallel)
	}
}

func TestRepeatedRunsRejectsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-runs", "3", "-json"}, &buf); err == nil {
		t.Error("-runs with -json: want error")
	}
	if err := run([]string{"-runs", "0"}, &buf); err == nil {
		t.Error("-runs 0: want error")
	}
}

// TestCheckpointResume runs the same Monte-Carlo protocol twice against
// one journal: the resumed invocation must replay every cell instead of
// recomputing and print the identical summary.
func TestCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "cells.jsonl")
	summary := func(resume bool) string {
		args := []string{
			"-preset", "slashdot", "-scale", "0.02", "-k", "10",
			"-cautious", "5", "-runs", "5", "-checkpoint", ckpt,
		}
		if resume {
			args = append(args, "-resume")
		}
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, l := range strings.Split(buf.String(), "\n") {
			if !strings.HasPrefix(l, "timing:") {
				lines = append(lines, l)
			}
		}
		return strings.Join(lines, "\n")
	}
	first := summary(false)
	second := summary(true)
	if first != second {
		t.Errorf("resumed summary differs:\n-- first --\n%s\n-- resumed --\n%s", first, second)
	}
	// Without -resume an existing journal must be refused, not mixed into.
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "slashdot", "-scale", "0.02", "-k", "10",
		"-cautious", "5", "-runs", "5", "-checkpoint", ckpt,
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("reusing journal without -resume: err = %v, want refusal", err)
	}
}

// TestCheckpointResumeDigest pins that -digest folds the replayed
// checkpoint records into the digest: a resumed run — whether it
// replays every cell or only half the journal — must print the same
// digest as an uninterrupted run of the same protocol.
func TestCheckpointResumeDigest(t *testing.T) {
	digestOf := func(args ...string) string {
		args = append([]string{
			"-preset", "slashdot", "-scale", "0.02", "-k", "10",
			"-cautious", "5", "-runs", "5", "-digest",
		}, args...)
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		for _, l := range strings.Split(buf.String(), "\n") {
			if d, ok := strings.CutPrefix(l, "digest:"); ok {
				return strings.TrimSpace(d)
			}
		}
		t.Fatalf("no digest line in:\n%s", buf.String())
		return ""
	}

	want := digestOf()

	ckpt := filepath.Join(t.TempDir(), "cells.jsonl")
	if got := digestOf("-checkpoint", ckpt); got != want {
		t.Fatalf("checkpointed digest %s, want %s", got, want)
	}
	// Full replay: every record comes from the journal.
	if got := digestOf("-checkpoint", ckpt, "-resume"); got != want {
		t.Errorf("fully replayed digest %s, want %s", got, want)
	}
	// Partial replay: keep half the journal, recompute the rest.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	if err := os.WriteFile(ckpt, []byte(strings.Join(lines[:len(lines)/2], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := digestOf("-checkpoint", ckpt, "-resume"); got != want {
		t.Errorf("partially replayed digest %s, want %s", got, want)
	}
}

func TestCheckpointFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-resume"}, &buf); err == nil {
		t.Error("-resume without -checkpoint: want error")
	}
	if err := run([]string{"-checkpoint", "x.jsonl"}, &buf); err == nil {
		t.Error("-checkpoint on a single run: want error")
	}
	if err := run([]string{"-keep-going"}, &buf); err == nil {
		t.Error("-keep-going on a single run: want error")
	}
}

func TestJournalFlag(t *testing.T) {
	tmp := t.TempDir() + "/trace.journal"
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "slashdot", "-scale", "0.02", "-k", "8",
		"-cautious", "5", "-journal", tmp,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines != 8 {
		t.Errorf("journal lines = %d, want 8\n%s", lines, data)
	}
}

// TestStoreOutAndQuery pins the result-store path end to end: a
// Monte-Carlo run writes both a columnar store and an aggregated result
// JSON; querying the store must reproduce the exact sketch quantiles of
// the live run (the store holds exact float64 benefits, so the replayed
// sketch is byte-identical).
func TestStoreOutAndQuery(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "out.acs")
	outJSON := filepath.Join(dir, "result.json")
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "slashdot", "-scale", "0.02", "-k", "10",
		"-cautious", "5", "-runs", "6", "-store", store, "-out", outJSON,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quantiles: p50") {
		t.Errorf("summary missing quantile line:\n%s", buf.String())
	}

	data, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Records  int    `json:"records"`
		Digest   string `json:"digest"`
		Policies []struct {
			Policy             string `json:"policy"`
			FinalBenefitSketch struct {
				Count         int64 `json:"count"`
				P50, P90, P99 float64
			} `json:"finalBenefitSketch"`
		} `json:"policies"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("invalid -out JSON: %v\n%s", err, data)
	}
	if res.Records != 6 || len(res.Policies) != 1 || res.Digest == "" {
		t.Fatalf("result = %+v", res)
	}
	live := res.Policies[0]

	var qbuf bytes.Buffer
	if err := run([]string{"query", "-store", store, "-policy", "abm", "-json"}, &qbuf); err != nil {
		t.Fatal(err)
	}
	var q struct {
		Rows     int64 `json:"rows"`
		Meta     map[string]string
		Policies []struct {
			Policy    string `json:"policy"`
			Count     int64  `json:"count"`
			Quantiles []struct {
				Q     float64 `json:"q"`
				Value float64 `json:"value"`
			} `json:"quantiles"`
		} `json:"policies"`
	}
	if err := json.Unmarshal(qbuf.Bytes(), &q); err != nil {
		t.Fatalf("invalid query JSON: %v\n%s", err, qbuf.String())
	}
	if q.Rows != 6 || len(q.Policies) != 1 || q.Policies[0].Count != 6 {
		t.Fatalf("query = %+v", q)
	}
	if q.Meta["preset"] != "slashdot" || q.Meta["runs"] != "6" {
		t.Errorf("meta = %v", q.Meta)
	}
	want := map[float64]float64{0.5: live.FinalBenefitSketch.P50, 0.9: live.FinalBenefitSketch.P90, 0.99: live.FinalBenefitSketch.P99}
	for _, qq := range q.Policies[0].Quantiles {
		if qq.Value != want[qq.Q] {
			t.Errorf("query p%g = %v, want %v (live run)", qq.Q*100, qq.Value, want[qq.Q])
		}
	}

	// Text mode renders a table with the quantile columns.
	var tbuf bytes.Buffer
	if err := run([]string{"query", "-store", store}, &tbuf); err != nil {
		t.Fatal(err)
	}
	for _, wantCol := range []string{"policy", "p50", "p90", "p99", "abm"} {
		if !strings.Contains(tbuf.String(), wantCol) {
			t.Errorf("query table missing %q:\n%s", wantCol, tbuf.String())
		}
	}

	// -where filters rows; a run filter keeps exactly one.
	var wbuf bytes.Buffer
	if err := run([]string{"query", "-store", store, "-where", "run=3", "-json"}, &wbuf); err != nil {
		t.Fatal(err)
	}
	var wq struct {
		Rows int64 `json:"rows"`
	}
	if err := json.Unmarshal(wbuf.Bytes(), &wq); err != nil {
		t.Fatal(err)
	}
	if wq.Rows != 1 {
		t.Errorf("filtered rows = %d, want 1", wq.Rows)
	}
}

func TestQueryFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"query"}, &buf); err == nil {
		t.Error("query without -store: want error")
	}
	store := filepath.Join(t.TempDir(), "x.acs")
	var rbuf bytes.Buffer
	if err := run([]string{
		"-preset", "slashdot", "-scale", "0.02", "-k", "8",
		"-cautious", "5", "-runs", "2", "-store", store,
	}, &rbuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"query", "-store", store, "-quantiles", "1.5"}, &buf); err == nil {
		t.Error("quantile > 1: want error")
	}
	if err := run([]string{"query", "-store", store, "-where", "banana=1"}, &buf); err == nil {
		t.Error("unknown where key: want error")
	}
	if err := run([]string{"query", "-store", store, "-where", "network"}, &buf); err == nil {
		t.Error("malformed where clause: want error")
	}
	if err := run([]string{"query", "-store", store, "-policy", "ghost"}, &buf); err == nil {
		t.Error("unknown policy filter: want error")
	}
	if err := run([]string{"-store", "x.acs"}, &buf); err == nil {
		t.Error("-store on a single run: want error")
	}
	if err := run([]string{"-out", "x.json"}, &buf); err == nil {
		t.Error("-out on a single run: want error")
	}
}
