package analysis

// fix.go is the autofix applier behind `accuvet -fix`: it takes the
// MachineApplicable suggested fixes off a run's diagnostics and rewrites
// the source files — atomically, gofmt-clean, and idempotently (a fix
// resolves its finding, so a second run has nothing left to apply).
//
// Safety rules, in order:
//
//   - Only fixes marked MachineApplicable are applied; advisory fixes
//     ride along to SARIF for humans. Suppressed findings are skipped —
//     an //accu:allow site was audited as intentional, rewriting it
//     would undo a human decision.
//   - A fix is all-or-nothing: every edit in it applies or none does.
//     Fixes whose edits overlap an already-selected fix are skipped and
//     counted, never half-applied. Edits spanning multiple files are
//     rejected outright.
//   - The rewritten file must survive go/format before it is written;
//     a fix that produces unparseable code aborts the whole run with the
//     file untouched.
//   - Writes are atomic (tmp + rename in the same directory), so a
//     crash mid-fix never leaves a torn source file.

import (
	"bytes"
	"fmt"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Files are the rewritten files, sorted.
	Files []string
	// Applied counts the fixes applied across all files.
	Applied int
	// Skipped counts machine-applicable fixes dropped because they
	// overlapped an already-selected fix; re-running after the first
	// round usually applies them.
	Skipped int
}

// offEdit is a TextEdit resolved to byte offsets within one file.
type offEdit struct {
	start, end int
	text       string
}

// fixPlan is one fix's resolved edits, kept atomic.
type fixPlan struct {
	edits []offEdit
}

func (p fixPlan) key() string {
	var b bytes.Buffer
	for _, e := range p.edits {
		fmt.Fprintf(&b, "%d:%d:%q;", e.start, e.end, e.text)
	}
	return b.String()
}

func overlaps(a, b offEdit) bool {
	return a.start < b.end && b.start < a.end
}

// ApplyFixes applies the machine-applicable fixes attached to diags and
// returns what changed. Unsuppressed findings only; one fix is either
// fully applied or skipped.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (*FixResult, error) {
	byFile := make(map[string][]fixPlan)
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		for _, f := range d.SuggestedFixes {
			if !f.MachineApplicable || len(f.Edits) == 0 {
				continue
			}
			file, plan, ok := resolveFix(fset, f)
			if ok {
				byFile[file] = append(byFile[file], plan)
			}
		}
	}

	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	res := &FixResult{}
	for _, file := range files {
		changed, err := applyFileFixes(file, byFile[file], res)
		if err != nil {
			return nil, err
		}
		if changed {
			res.Files = append(res.Files, file)
		}
	}
	return res, nil
}

// resolveFix maps one fix's token positions to byte offsets; ok is
// false when any edit is invalid or the fix spans files.
func resolveFix(fset *token.FileSet, f SuggestedFix) (string, fixPlan, bool) {
	var plan fixPlan
	file := ""
	for _, e := range f.Edits {
		if !e.Pos.IsValid() || !e.End.IsValid() {
			return "", plan, false
		}
		ps, pe := fset.Position(e.Pos), fset.Position(e.End)
		if pe.Offset < ps.Offset || ps.Filename == "" || pe.Filename != ps.Filename {
			return "", plan, false
		}
		if file == "" {
			file = ps.Filename
		} else if ps.Filename != file {
			return "", plan, false
		}
		plan.edits = append(plan.edits, offEdit{start: ps.Offset, end: pe.Offset, text: e.NewText})
	}
	sort.Slice(plan.edits, func(i, j int) bool { return plan.edits[i].start < plan.edits[j].start })
	for i := 1; i < len(plan.edits); i++ {
		if overlaps(plan.edits[i-1], plan.edits[i]) {
			return "", plan, false
		}
	}
	return file, plan, file != ""
}

// applyFileFixes selects the non-conflicting fixes for one file, applies
// them, formats, and writes atomically. Reports whether the file
// changed.
func applyFileFixes(file string, plans []fixPlan, res *FixResult) (bool, error) {
	src, err := os.ReadFile(file)
	if err != nil {
		return false, fmt.Errorf("fix: %w", err)
	}
	for _, p := range plans {
		for _, e := range p.edits {
			if e.end > len(src) {
				return false, fmt.Errorf("fix %s: edit beyond EOF (stale positions?)", file)
			}
		}
	}

	seen := make(map[string]bool, len(plans))
	var taken []offEdit
	applied := 0
	for _, p := range plans {
		if seen[p.key()] {
			continue // the same fix reported twice (e.g. by two diagnostics)
		}
		conflict := false
		for _, e := range p.edits {
			for _, t := range taken {
				if overlaps(e, t) {
					conflict = true
				}
			}
		}
		if conflict {
			res.Skipped++
			continue
		}
		seen[p.key()] = true
		taken = append(taken, p.edits...)
		applied++
	}
	if len(taken) == 0 {
		return false, nil
	}

	// Apply back-to-front so earlier offsets stay valid. Equal-offset
	// insertions keep selection order via the index tiebreak.
	idx := make(map[offEdit]int, len(taken))
	for i, e := range taken {
		idx[e] = i
	}
	sort.SliceStable(taken, func(i, j int) bool {
		if taken[i].start != taken[j].start {
			return taken[i].start > taken[j].start
		}
		return idx[taken[i]] > idx[taken[j]]
	})
	out := append([]byte(nil), src...)
	for _, e := range taken {
		out = append(out[:e.start], append([]byte(e.text), out[e.end:]...)...)
	}

	formatted, err := format.Source(out)
	if err != nil {
		return false, fmt.Errorf("fix %s: result does not gofmt (fix bug, file untouched): %w", file, err)
	}
	if bytes.Equal(formatted, src) {
		return false, nil
	}

	info, err := os.Stat(file)
	if err != nil {
		return false, fmt.Errorf("fix: %w", err)
	}
	tmp := filepath.Join(filepath.Dir(file), "."+filepath.Base(file)+".accuvet-fix")
	if err := os.WriteFile(tmp, formatted, info.Mode().Perm()); err != nil {
		return false, fmt.Errorf("fix: %w", err)
	}
	if err := os.Rename(tmp, file); err != nil {
		os.Remove(tmp)
		return false, fmt.Errorf("fix: %w", err)
	}
	res.Applied += applied
	return true, nil
}

// AllowInsertFix builds the //accu:allow insertion for one finding site
// — the -fix -suggest composition: the directive lands on its own line
// directly above the finding, indented to match, with a TODO reason a
// human must fill in. analyzers is the comma-joined list to suppress, so
// the driver can fold co-located findings into one directive. Not
// machine-applicable in spirit (it changes the audit surface, not the
// code), so the driver only builds it on request.
func AllowInsertFix(fset *token.FileSet, src []byte, pos token.Pos, analyzers string) (SuggestedFix, bool) {
	p := fset.Position(pos)
	tf := fset.File(pos)
	if tf == nil || p.Line < 1 || p.Line > tf.LineCount() {
		return SuggestedFix{}, false
	}
	lineStart := tf.LineStart(p.Line)
	off := tf.Offset(lineStart)
	if off > len(src) {
		return SuggestedFix{}, false
	}
	indent := ""
	for _, r := range string(src[off:]) {
		if r == ' ' || r == '\t' {
			indent += string(r)
			continue
		}
		break
	}
	return SuggestedFix{
		Message:           "suppress with an //accu:allow directive (fill in the reason)",
		MachineApplicable: true,
		Edits: []TextEdit{{
			Pos:     lineStart,
			End:     lineStart,
			NewText: indent + "//accu:allow " + analyzers + " -- TODO: justify this intentional violation\n",
		}},
	}, true
}
