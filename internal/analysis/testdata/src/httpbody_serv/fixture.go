// Fixture for the httpbody analyzer: response bodies must be closed on
// every CFG path (through in-package helpers too) and drained when they
// are closed without ever being read.
package serv

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

var errStatus = errors.New("unexpected status")

func leakOnReturn(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url) // want `resp's response body is not closed on every path`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func closedWithDefer(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func branchLeak(c *http.Client, url string, v any) error {
	resp, err := c.Get(url) // want `resp's response body is not closed on every path`
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errStatus // leaks: no Close on this path
	}
	err = json.NewDecoder(resp.Body).Decode(v)
	resp.Body.Close()
	return err
}

// drainClose is the helper shape the parameter summaries must see
// through: it drains and closes whatever body it is handed.
func drainClose(rc io.ReadCloser) {
	io.Copy(io.Discard, rc)
	rc.Close()
}

// closeOnly closes without draining — discharges the close obligation
// but not the drain one.
func closeOnly(rc io.ReadCloser) { rc.Close() }

func closedThroughHelper(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	defer drainClose(resp.Body)
	return resp.StatusCode, nil
}

func closedButNotDrained(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer closeOnly(resp.Body) // want `resp's body is closed but never read or drained`
	return nil
}

func directCloseNoRead(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	resp.Body.Close() // want `resp's body is closed but never read or drained`
	return nil
}

// fetch produces the response through one in-package hop; callers still
// own the body (respAssign keys off the result type, not the callee).
func fetch(c *http.Client, url string) (*http.Response, error) { return c.Get(url) }

func leakFromHelper(c *http.Client, url string) error {
	resp, err := fetch(c, url) // want `resp's response body is not closed on every path`
	if err != nil {
		return err
	}
	_ = resp.Status
	return nil
}

func returnsOwnership(c *http.Client, url string) (*http.Response, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil // ownership moves to the caller: no obligation here
}

func allowedLeak(c *http.Client, url string) {
	resp, err := c.Get(url) //accu:allow httpbody -- process exits immediately after this probe
	if err != nil {
		return
	}
	_ = resp.StatusCode
}
