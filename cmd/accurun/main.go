// Command accurun executes a single adaptive attack with a chosen policy
// and prints the request-by-request trace — useful for inspecting how ABM
// courts cautious users.
//
// Usage:
//
//	accurun -preset slashdot -scale 0.02 -policy abm -k 50 [-wd 0.5 -wi 0.5]
//
// Policies: abm, greedy, maxdegree, pagerank, random.
//
// With -runs N (N > 1) accurun instead runs the Monte-Carlo engine on the
// single-network protocol — N independent realizations of one network,
// fanned out over -workers — and prints summary statistics (mean, std,
// exact min/max and sketch-backed p50/p90/p99). This is the "one dataset,
// many repetitions" shape the cell-level scheduler parallelizes. In that
// mode -store writes every (policy, network, run, benefit,
// cautiousFriends) row to a compact columnar result store and -out writes
// the aggregated result (Welford + quantile-sketch snapshots per policy,
// same shape as an accuserv job result) as JSON.
//
// The query subcommand re-aggregates a result store offline:
//
//	accurun query -store out.acs -policy abm -quantiles 0.5,0.9,0.99 [-where network=0,run=3] [-json]
//
// at O(sketch centroids) memory regardless of row count.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	accu "github.com/accu-sim/accu"
	"github.com/accu-sim/accu/internal/prof"
	"github.com/accu-sim/accu/internal/serv"
	"github.com/accu-sim/accu/internal/stats"
)

// writeJournal saves the replayable request journal of a run.
func writeJournal(path string, res *accu.Result) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create journal: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if _, err := res.Journal.WriteTo(f); err != nil {
		return fmt.Errorf("write journal: %w", err)
	}
	return nil
}

// traceJSON is the machine-readable attack trace emitted by -json.
type traceJSON struct {
	Preset          string      `json:"preset"`
	Scale           float64     `json:"scale"`
	Nodes           int         `json:"nodes"`
	Edges           int         `json:"edges"`
	Cautious        int         `json:"cautious"`
	Policy          string      `json:"policy"`
	Budget          int         `json:"budget"`
	Benefit         float64     `json:"benefit"`
	Friends         int         `json:"friends"`
	CautiousFriends int         `json:"cautiousFriends"`
	Steps           []accu.Step `json:"steps"`

	// Metrics is the policy/environment metrics snapshot (-metrics).
	Metrics *accu.MetricsSnapshot `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accurun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "query" {
		return runQuery(args[1:], out)
	}
	fs := flag.NewFlagSet("accurun", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "slashdot", "dataset preset")
		scale    = fs.Float64("scale", 0.02, "scale factor in (0, 1]")
		policy   = fs.String("policy", "abm", "policy: abm|greedy|maxdegree|pagerank|random")
		k        = fs.Int("k", 50, "friend-request budget")
		wd       = fs.Float64("wd", 0.5, "ABM w_D")
		wi       = fs.Float64("wi", 0.5, "ABM w_I")
		cautious = fs.Int("cautious", 10, "number of cautious users")
		seed     = fs.Uint64("seed", 1, "random seed")
		verbose  = fs.Bool("v", false, "print every request (default: accepted only)")
		asJSON   = fs.Bool("json", false, "emit the full trace as JSON instead of text")
		journal  = fs.String("journal", "", "write the replayable request journal to this file")
		runs     = fs.Int("runs", 1, "repeat the attack over N realizations and print summary stats")
		workers  = fs.Int("workers", 0, "worker pool for -runs > 1 (0 = GOMAXPROCS)")

		checkpoint = fs.String("checkpoint", "", "journal completed cells to this JSONL file (-runs > 1 only)")
		resume     = fs.Bool("resume", false, "resume from an existing -checkpoint journal")
		keepGoing  = fs.Bool("keep-going", false, "continue past failed cells and report them as warnings (-runs > 1 only)")
		digest     = fs.Bool("digest", false, "print the canonical SHA-256 record-set digest (-runs > 1 only)")
		store      = fs.String("store", "", "write per-record rows to this columnar result store (-runs > 1 only)")
		outFile    = fs.String("out", "", "write the aggregated result (Welford + sketch snapshots) as JSON to this file (-runs > 1 only)")

		metrics    = fs.Bool("metrics", false, "print policy/environment metrics after the trace")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(prof.Options{CPUProfile: *cpuprofile, MemProfile: *memprofile, PprofAddr: *pprofAddr})
	if err != nil {
		return err
	}
	defer stopProf()
	var reg *accu.Metrics
	if *metrics {
		reg = accu.NewMetrics()
	}

	p, err := accu.PresetByName(*preset)
	if err != nil {
		return err
	}
	generator, err := p.Generator(*scale)
	if err != nil {
		return err
	}
	root := accu.NewSeed(*seed, *seed*2+1)
	setup := accu.DefaultSetup()
	setup.NumCautious = *cautious
	if *runs < 1 {
		return fmt.Errorf("-runs %d must be >= 1", *runs)
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *runs > 1 {
		if *asJSON || *journal != "" {
			return fmt.Errorf("-runs > 1 prints summary statistics; -json and -journal apply to single runs only")
		}
		factory, err := policyFactory(*policy, *wd, *wi, reg)
		if err != nil {
			return err
		}
		meta := map[string]string{
			"preset":   *preset,
			"scale":    fmt.Sprintf("%g", *scale),
			"policy":   *policy,
			"k":        fmt.Sprintf("%d", *k),
			"cautious": fmt.Sprintf("%d", *cautious),
			"seed":     fmt.Sprintf("%d", *seed),
			"runs":     fmt.Sprintf("%d", *runs),
		}
		return runRepeated(out, generator, setup, factory, *k, *runs, *workers, root, reg,
			*checkpoint, *resume, *keepGoing, *digest, *store, *outFile, meta)
	}
	if *checkpoint != "" || *keepGoing || *digest || *store != "" || *outFile != "" {
		return fmt.Errorf("-checkpoint, -keep-going, -digest, -store and -out apply to the -runs > 1 Monte-Carlo mode only")
	}
	g, err := generator.Generate(root.Split("network"))
	if err != nil {
		return err
	}
	inst, err := setup.Build(g, root.Split("setup"))
	if err != nil {
		return err
	}
	inst.Instrument(reg)
	re := inst.SampleRealization(root.Split("realization"))

	var pol accu.Policy
	switch *policy {
	case "abm":
		pol, err = accu.NewABM(accu.Weights{WD: *wd, WI: *wi}, accu.WithMetrics(reg))
		if err != nil {
			return err
		}
	case "greedy":
		pol = accu.NewPureGreedy()
	case "maxdegree":
		pol = accu.NewMaxDegree()
	case "pagerank":
		pol = accu.NewPageRank()
	case "random":
		pol = accu.NewRandom(root.Split("random-policy"))
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	res, err := accu.Run(pol, re, *k)
	if err != nil {
		return err
	}
	if *journal != "" {
		if err := writeJournal(*journal, res); err != nil {
			return err
		}
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(traceJSON{
			Preset:          p.Key,
			Scale:           *scale,
			Nodes:           g.N(),
			Edges:           g.M(),
			Cautious:        inst.NumCautious(),
			Policy:          res.Policy,
			Budget:          *k,
			Benefit:         res.Benefit,
			Friends:         res.Friends,
			CautiousFriends: res.CautiousFriends,
			Steps:           res.Steps,
			Metrics:         reg.Snapshot(),
		})
	}

	fmt.Fprintf(out, "network: %s scale %.3f — %d nodes, %d edges, %d cautious\n",
		p.Key, *scale, g.N(), g.M(), inst.NumCautious())
	fmt.Fprintf(out, "policy:  %s, budget %d\n\n", res.Policy, *k)
	for i, s := range res.Steps {
		if !s.Accepted && !*verbose {
			continue
		}
		kind := "reckless"
		if s.Cautious {
			kind = "CAUTIOUS"
		}
		status := "accepted"
		if !s.Accepted {
			status = "rejected"
		}
		fmt.Fprintf(out, "#%-4d user %-6d %-8s %-8s gain %7.1f  total %8.1f  cautious friends %d\n",
			i+1, s.User, kind, status, s.Gain, s.BenefitAfter, s.CautiousFriendsAfter)
	}
	fmt.Fprintf(out, "\nfinal: benefit %.1f, friends %d (%d cautious), %d requests sent\n",
		res.Benefit, res.Friends, res.CautiousFriends, len(res.Steps))
	if snap := reg.Snapshot(); !snap.Empty() {
		fmt.Fprintf(out, "\n-- metrics --\n%s", snap.Render())
	}
	return nil
}

// queryPolicy is one policy's re-aggregated statistics in a query result.
type queryPolicy struct {
	Policy          string               `json:"policy"`
	Count           int64                `json:"count"`
	Benefit         accu.WelfordSnapshot `json:"benefit"`
	CautiousFriends accu.WelfordSnapshot `json:"cautiousFriends"`
	BenefitSketch   accu.SketchSnapshot  `json:"benefitSketch"`
	Quantiles       []queryQuantile      `json:"quantiles"`
}

// queryQuantile is one requested quantile of the benefit distribution.
type queryQuantile struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

// queryResult is the JSON payload of the query subcommand.
type queryResult struct {
	Store     string            `json:"store"`
	Meta      map[string]string `json:"meta,omitempty"`
	Truncated bool              `json:"truncated,omitempty"`
	Rows      int64             `json:"rows"`
	Policies  []queryPolicy     `json:"policies"`
}

// runQuery re-aggregates a columnar result store: it streams the rows
// through per-policy Welford accumulators and quantile sketches, so
// memory stays O(policies × sketch centroids) however many rows the
// store holds.
func runQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("accurun query", flag.ContinueOnError)
	var (
		store     = fs.String("store", "", "columnar result store to query (required)")
		policy    = fs.String("policy", "", "restrict to one policy")
		quantiles = fs.String("quantiles", "0.5,0.9,0.99", "comma-separated quantiles in [0, 1]")
		where     = fs.String("where", "", "row filters, comma-separated key=value (keys: network, run)")
		asJSON    = fs.Bool("json", false, "emit the aggregation as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("query: -store is required")
	}
	qs, err := parseQuantiles(*quantiles)
	if err != nil {
		return err
	}
	filter, err := parseWhere(*where)
	if err != nil {
		return err
	}

	sr, err := accu.OpenResultStore(*store)
	if err != nil {
		return err
	}
	type agg struct {
		benefit  accu.Welford
		cautious accu.Welford
		sketch   *accu.Sketch
	}
	var order []string
	aggs := make(map[string]*agg)
	var rows int64
	err = sr.Scan(func(rec accu.StoreRecord) error {
		if *policy != "" && rec.Policy != *policy {
			return nil
		}
		if !filter.match(rec) {
			return nil
		}
		a, ok := aggs[rec.Policy]
		if !ok {
			a = &agg{sketch: accu.NewSketch()}
			aggs[rec.Policy] = a
			order = append(order, rec.Policy)
		}
		a.benefit.Add(rec.Benefit)
		a.cautious.Add(float64(rec.CautiousFriends))
		a.sketch.Add(rec.Benefit)
		rows++
		return nil
	})
	if err != nil {
		return err
	}
	if sr.Truncated() {
		fmt.Fprintf(os.Stderr, "accurun: warning: %s has a torn trailing block (interrupted writer); results cover the intact prefix\n", *store)
	}
	if *policy != "" && len(order) == 0 {
		return fmt.Errorf("query: no rows for policy %q in %s", *policy, *store)
	}

	res := queryResult{Store: *store, Meta: sr.Meta(), Truncated: sr.Truncated(), Rows: rows}
	for _, p := range order {
		a := aggs[p]
		qp := queryPolicy{
			Policy:          p,
			Count:           a.benefit.Count(),
			Benefit:         a.benefit.Snapshot(),
			CautiousFriends: a.cautious.Snapshot(),
			BenefitSketch:   a.sketch.Snapshot(),
		}
		for _, q := range qs {
			qp.Quantiles = append(qp.Quantiles, queryQuantile{Q: q, Value: a.sketch.Quantile(q)})
		}
		res.Policies = append(res.Policies, qp)
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	header := []string{"policy", "count", "benefit"}
	for _, q := range qs {
		header = append(header, fmt.Sprintf("p%g", q*100))
	}
	header = append(header, "cautious")
	var tRows [][]string
	for _, qp := range res.Policies {
		row := []string{
			qp.Policy,
			fmt.Sprintf("%d", qp.Count),
			fmt.Sprintf("%.1f ±%.1f", qp.Benefit.Mean, qp.Benefit.CI95),
		}
		for _, qq := range qp.Quantiles {
			row = append(row, fmt.Sprintf("%.1f", qq.Value))
		}
		row = append(row, fmt.Sprintf("%.1f", qp.CautiousFriends.Mean))
		tRows = append(tRows, row)
	}
	fmt.Fprintf(out, "store: %s (%d rows)\n", *store, rows)
	if len(res.Meta) > 0 {
		keys := make([]string, 0, len(res.Meta))
		for k := range res.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+res.Meta[k])
		}
		fmt.Fprintf(out, "meta:  %s\n", strings.Join(parts, " "))
	}
	fmt.Fprint(out, stats.RenderTable(header, tRows))
	return nil
}

// parseQuantiles parses the -quantiles flag into ascending probabilities.
func parseQuantiles(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		q, err := strconv.ParseFloat(part, 64)
		if err != nil || q < 0 || q > 1 {
			return nil, fmt.Errorf("query: invalid quantile %q (want a number in [0, 1])", part)
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("query: -quantiles is empty")
	}
	return out, nil
}

// rowFilter holds the parsed -where clauses: nil fields match any value.
type rowFilter struct {
	network, run *int
}

func (f rowFilter) match(rec accu.StoreRecord) bool {
	if f.network != nil && rec.Network != *f.network {
		return false
	}
	if f.run != nil && rec.Run != *f.run {
		return false
	}
	return true
}

// parseWhere parses "network=0,run=3"-style filters.
func parseWhere(s string) (rowFilter, error) {
	var f rowFilter
	if s == "" {
		return f, nil
	}
	for _, clause := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return f, fmt.Errorf("query: invalid -where clause %q (want key=value)", clause)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return f, fmt.Errorf("query: invalid -where value %q: %v", val, err)
		}
		switch key {
		case "network":
			f.network = &n
		case "run":
			f.run = &n
		default:
			return f, fmt.Errorf("query: unknown -where key %q (have: network, run)", key)
		}
	}
	return f, nil
}

// policyFactory builds the Monte-Carlo factory for one named policy. The
// random baseline derives its stream from the per-cell factory seed, so
// repeated runs stay independent yet reproducible.
func policyFactory(name string, wd, wi float64, reg *accu.Metrics) (accu.PolicyFactory, error) {
	switch name {
	case "abm":
		w := accu.Weights{WD: wd, WI: wi}
		return accu.PolicyFactory{Name: "abm", New: func(accu.Seed) (accu.Policy, error) {
			return accu.NewABM(w, accu.WithMetrics(reg))
		}}, nil
	case "greedy":
		return accu.PolicyFactory{Name: "greedy", New: func(accu.Seed) (accu.Policy, error) {
			return accu.NewPureGreedy(), nil
		}}, nil
	case "maxdegree":
		return accu.PolicyFactory{Name: "maxdegree", New: func(accu.Seed) (accu.Policy, error) {
			return accu.NewMaxDegree(), nil
		}}, nil
	case "pagerank":
		return accu.PolicyFactory{Name: "pagerank", New: func(accu.Seed) (accu.Policy, error) {
			return accu.NewPageRank(), nil
		}}, nil
	case "random":
		return accu.PolicyFactory{Name: "random", New: func(s accu.Seed) (accu.Policy, error) {
			return accu.NewRandom(s), nil
		}}, nil
	default:
		return accu.PolicyFactory{}, fmt.Errorf("unknown policy %q", name)
	}
}

// runRepeated executes the -runs > 1 mode: one network, many realizations,
// fanned out over the cell-level scheduler, summarized as distribution
// statistics (via accu.Summary: Welford moments plus mergeable quantile
// sketches) rather than a per-request trace. With checkpoint set,
// completed cells journal to that file and a resumed invocation replays
// them into the statistics before computing only what is missing. With
// store set, every record additionally appends one row to a columnar
// result store; with outPath set, the aggregated per-policy result
// (identical in shape to an accuserv job result) is written as JSON.
func runRepeated(out io.Writer, generator accu.Generator, setup accu.Setup, factory accu.PolicyFactory, k, runs, workers int, root accu.Seed, reg *accu.Metrics, checkpoint string, resume, keepGoing, digest bool, store, outPath string, meta map[string]string) error {
	protocol := accu.Protocol{
		Gen:             generator,
		Setup:           setup,
		Networks:        1,
		Runs:            runs,
		K:               k,
		Seed:            root,
		Workers:         workers,
		Metrics:         reg,
		ContinueOnError: keepGoing,
	}
	resolved, clamped := protocol.ResolveWorkers()
	if clamped {
		fmt.Fprintf(os.Stderr, "accurun: -workers %d exceeds the %d-cell run grid; running with %d workers\n",
			workers, runs, resolved)
	}

	summary := accu.NewSummary(nil)
	var sumFriends int
	var dig *accu.RecordDigest
	if digest || outPath != "" {
		dig = accu.NewRecordDigest()
	}
	var sw *accu.StoreWriter
	if store != "" {
		w, err := accu.CreateResultStore(store, meta)
		if err != nil {
			return err
		}
		sw = w
	}
	var storeErr error
	collect := func(r accu.Record) {
		if dig != nil {
			dig.Collect(r)
		}
		summary.Collect(r)
		sumFriends += r.Result.Friends
		if sw != nil && storeErr == nil {
			storeErr = sw.Append(accu.StoreRecord{
				Policy:          r.Policy,
				Network:         r.Network,
				Run:             r.Run,
				Benefit:         r.Result.Benefit,
				CautiousFriends: r.Result.CautiousFriends,
			})
		}
	}

	var cells *accu.CellJournal
	if checkpoint != "" {
		j, err := accu.OpenCellJournal(checkpoint, resume)
		if err != nil {
			return err
		}
		cells = j
		if replayed := cells.Cells(); replayed > 0 {
			fmt.Fprintf(os.Stderr, "accurun: resuming %d completed cell(s) from %s\n", replayed, checkpoint)
		}
		if d := cells.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "accurun: warning: %s: corrupt journal line discarded %d valid completed cell(s) after it; they will re-run\n", checkpoint, d)
		}
		cells.Replay(collect)
		protocol.Checkpoint = cells
	}

	start := time.Now()
	err := accu.MonteCarlo(context.Background(), protocol, []accu.PolicyFactory{factory}, collect)
	if cells != nil {
		if cerr := cells.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close checkpoint journal: %w", cerr)
		}
	}
	if sw != nil {
		if cerr := sw.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close result store: %w", cerr)
		}
	}
	var fsum *accu.FailureSummary
	if keepGoing && errors.As(err, &fsum) {
		fmt.Fprintf(os.Stderr, "accurun: warning: %v\n", fsum)
		err = nil
	}
	if err != nil {
		return err
	}
	if storeErr != nil {
		return fmt.Errorf("append to result store: %w", storeErr)
	}
	fb := summary.FinalBenefit(factory.Name)
	if fb == nil || fb.Count() == 0 {
		return fmt.Errorf("no cells completed")
	}
	n := int(fb.Count())
	wall := time.Since(start)

	sk := summary.FinalBenefitSketch(factory.Name)
	snap := sk.Snapshot()
	fmt.Fprintf(out, "policy:  %s, budget %d, %d realizations, %d workers\n",
		factory.Name, k, n, resolved)
	fmt.Fprintf(out, "benefit: mean %.1f  std %.1f  min %.1f  max %.1f\n",
		fb.Mean(), fb.Std(), snap.Min, snap.Max)
	fmt.Fprintf(out, "quantiles: p50 %.1f  p90 %.1f  p99 %.1f\n",
		snap.P50, snap.P90, snap.P99)
	fmt.Fprintf(out, "friends: mean %.1f (%.1f cautious)\n",
		float64(sumFriends)/float64(n), summary.CautiousFriends(factory.Name).Mean())
	fmt.Fprintf(out, "timing:  %v wall, %.1f runs/sec\n",
		wall.Round(time.Millisecond), float64(n)/wall.Seconds())
	if dig != nil && digest {
		fmt.Fprintf(out, "digest:  %s\n", dig.Sum())
	}
	if outPath != "" {
		res := serv.BuildResult(n, dig, summary)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write -out: %w", err)
		}
	}
	if snap := reg.Snapshot(); !snap.Empty() {
		fmt.Fprintf(out, "\n-- metrics --\n%s", snap.Render())
	}
	return nil
}
