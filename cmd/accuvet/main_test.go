package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
)

// TestRepoIsClean is the lint smoke test: the suite must run clean over
// this repository, exactly as `make lint` / CI invoke it.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"github.com/accu-sim/accu/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("accuvet exit %d on clean repo:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestSyntheticViolationFails builds a throwaway module containing a
// deterministic-package clock read and asserts the checker fails on it.
func TestSyntheticViolationFails(t *testing.T) {
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "time.Now reads the clock") || !strings.Contains(out, "[detrand]") {
		t.Fatalf("missing detrand finding in output:\n%s", out)
	}
}

// TestListAnalyzers: -list names all fourteen analyzers.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	names := []string{
		"detrand", "maporder", "seedflow", "metricname",
		"lockbalance", "atomicmix", "ctxcancel", "scratchescape", "errcmp",
		"httpbody", "respwrite", "lockedio", "ctxflow", "timerleak",
	}
	for _, name := range names {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("missing analyzer %q in -list output:\n%s", name, stdout.String())
		}
	}
	if got := strings.Count(strings.TrimRight(stdout.String(), "\n"), "\n") + 1; got != len(names) {
		t.Errorf("-list printed %d analyzers, want %d:\n%s", got, len(names), stdout.String())
	}
}

// TestVetProtocolFlags: the go command interrogates -flags before
// passing anything through; the answer must be valid JSON (accuvet
// exposes no extra flags, so an empty array).
func TestVetProtocolFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("-flags output = %q, want []", got)
	}
}

// TestJSONOutput: findings serialize as JSON with positions.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "github.com/accu-sim/accu/internal/rng"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean package JSON = %q, want []", got)
	}
}

// TestSuggestMode builds a throwaway module with one live violation and
// one already-allowed violation: -suggest prints both (the allowed one
// marked), suggests the //accu:allow syntax for the live one, and exits
// 1 because a live finding remains.
func TestSuggestMode(t *testing.T) {
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }

// Boot is the audited exception.
func Boot() int64 {
	//accu:allow detrand -- startup banner only, never recorded
	return time.Now().UnixNano()
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-suggest", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one live finding)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, fragment := range []string{
		"//accu:allow detrand",
		"to suppress",
		"(allowed)",
	} {
		if !strings.Contains(out, fragment) {
			t.Errorf("missing %q in -suggest output:\n%s", fragment, out)
		}
	}

	// Exit-code consistency: the plain run sees only the live finding
	// and must agree with -suggest's verdict.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("plain run exit = %d, want 1", code)
	}
}

// writeViolationModule lays out a throwaway module with one detrand
// violation in a deterministic package and chdirs into it.
func writeViolationModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	return dir
}

// TestBaselineRatchet drives the full ratchet cycle on a throwaway
// module: a live finding fails the plain run, -write-baseline snapshots
// it, -baseline then passes, and a second (new) violation fails again
// with only the new finding reported.
func TestBaselineRatchet(t *testing.T) {
	dir := writeViolationModule(t)
	base := filepath.Join(dir, "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("pre-baseline exit = %d, want 1\n%s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-write-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0 (finding should be absorbed):\n%s", code, stderr.String())
	}

	// A new violation — same analyzer, different site/message — must
	// still fail: the baseline fingerprint is (file, analyzer, message).
	extra := filepath.Join(dir, "internal", "core", "worse.go")
	if err := os.WriteFile(extra, []byte(`package core

import "time"

// Elapsed also reads the clock.
func Elapsed() time.Time { return time.Now() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("new-finding exit = %d, want 1\n%s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "worse.go") {
		t.Errorf("new finding missing from output:\n%s", out)
	}
	if strings.Contains(out, "bad.go") {
		t.Errorf("baselined finding leaked into output:\n%s", out)
	}
}

// TestSARIFOutput: -sarif renders findings as a parseable SARIF 2.1.0
// log with the analyzer as ruleId and a repo-relative URI, while the
// exit code still reflects the findings.
func TestSARIFOutput(t *testing.T) {
	dir := writeViolationModule(t)
	sarifPath := filepath.Join(dir, "out.sarif")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", sarifPath, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1: %s", code, stderr.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q, want 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "accuvet" {
		t.Errorf("driver name = %q", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != 14 {
		t.Errorf("rules table has %d entries, want 14 (one per analyzer)", len(r.Tool.Driver.Rules))
	}
	if len(r.Results) == 0 {
		t.Fatal("no results in SARIF log for a module with a violation")
	}
	res := r.Results[0]
	if res.RuleID != "detrand" || res.Level != "warning" {
		t.Errorf("result ruleId/level = %q/%q, want detrand/warning", res.RuleID, res.Level)
	}
	loc := res.Locations[0].PhysicalLocation
	if want := "internal/core/bad.go"; loc.ArtifactLocation.URI != want {
		t.Errorf("result uri = %q, want %q", loc.ArtifactLocation.URI, want)
	}
	if loc.Region.StartLine == 0 {
		t.Error("result has no startLine")
	}
}

// TestVetUnitSARIFDir: in vettool mode, ACCUVET_SARIF_DIR collects one
// SARIF log per analyzed unit. The test hand-crafts the unit.cfg the go
// command would pass (export data for "time" comes from go list), so it
// exercises the real vetUnitMode path without re-execing the binary.
func TestVetUnitSARIFDir(t *testing.T) {
	dir := writeViolationModule(t)
	badGo := filepath.Join(dir, "internal", "core", "bad.go")

	export, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "time").Output()
	if err != nil {
		t.Skipf("go list -export time: %v", err)
	}
	cfg := analysis.VetConfig{
		ID:          "example.test/internal/core",
		Compiler:    "gc",
		Dir:         filepath.Join(dir, "internal", "core"),
		ImportPath:  "example.test/internal/core",
		GoFiles:     []string{badGo},
		ImportMap:   map[string]string{"time": "time"},
		PackageFile: map[string]string{"time": strings.TrimSpace(string(export))},
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sarifDir := t.TempDir()
	t.Setenv("ACCUVET_SARIF_DIR", sarifDir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("vet unit exit = %d, want 1\n%s", code, stderr.String())
	}
	entries, err := os.ReadDir(sarifDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ACCUVET_SARIF_DIR holds %d files, want 1", len(entries))
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "unit-") || !strings.HasSuffix(name, ".sarif") {
		t.Errorf("per-unit log name = %q, want unit-<hash>.sarif", name)
	}
	logData, err := os.ReadFile(filepath.Join(sarifDir, name))
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(logData, &log); err != nil {
		t.Fatalf("per-unit SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("per-unit SARIF malformed: %s", logData)
	}
	if got := log.Runs[0].Results[0].RuleID; got != "detrand" {
		t.Errorf("per-unit result ruleId = %q, want detrand", got)
	}
}

// TestDedupSort: duplicate findings collapse and output ordering is by
// file, line, column, analyzer — independent of insertion order.
func TestDedupSort(t *testing.T) {
	fset := token.NewFileSet()
	fileB := fset.AddFile("b.go", -1, 100)
	fileA := fset.AddFile("a.go", -1, 100)
	posB := fileB.Pos(10)
	posA1 := fileA.Pos(50)
	posA2 := fileA.Pos(5)

	diags := []analysis.Diagnostic{
		{Pos: posB, Analyzer: "maporder", Message: "m3"},
		{Pos: posA1, Analyzer: "detrand", Message: "m2"},
		{Pos: posA2, Analyzer: "seedflow", Message: "m1"},
		{Pos: posA1, Analyzer: "detrand", Message: "m2"}, // exact duplicate
	}
	got := dedupSort(fset, diags)
	if len(got) != 3 {
		t.Fatalf("got %d findings after dedup, want 3", len(got))
	}
	wantOrder := []string{"m1", "m2", "m3"}
	for i, d := range got {
		if d.Message != wantOrder[i] {
			t.Errorf("position %d: got %q, want %q", i, d.Message, wantOrder[i])
		}
	}
}
