// Package report is a fixture stub for a package outside the scratch
// scope: storing per-worker scratch into its fields crosses the API
// boundary and must be flagged.
package report

// Sink accepts arbitrary payloads.
type Sink struct {
	Payload any
}
