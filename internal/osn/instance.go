// Package osn implements the attack environment of the ACCU problem
// (§II of the paper): the probabilistic social network G = (V, E, p), the
// two friend-request acceptance models (probabilistic for reckless users,
// linear-threshold for cautious users), the benefit model, ground-truth
// realization sampling, and the attacker's partial-realization state with
// its observation updates.
package osn

import (
	"errors"
	"fmt"
	"math"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/obs"
)

// Kind classifies a user by acceptance model.
type Kind uint8

// User kinds. Reckless users accept with probability q(u); cautious users
// accept deterministically iff the mutual-friend threshold θ is met.
const (
	Reckless Kind = iota + 1
	Cautious
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Reckless:
		return "reckless"
	case Cautious:
		return "cautious"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Errors returned by instance construction and validation.
var (
	ErrShapeMismatch  = errors.New("osn: attribute length does not match graph")
	ErrBadProbability = errors.New("osn: probability out of [0, 1]")
	ErrBadThreshold   = errors.New("osn: cautious threshold must be positive")
	ErrBadBenefit     = errors.New("osn: benefit must be non-negative")
)

// Instance is a fully specified ACCU problem instance: the potential
// friendship graph with link-existence probabilities, the user kinds and
// their acceptance parameters, and the benefit model. Instances are
// immutable after construction and safe to share across goroutines.
type Instance struct {
	g *graph.Graph

	// edgeProb[i] is p(u, v) for the directed CSR slot i = AdjBase(u)+j,
	// v = Neighbors(u)[j]. Symmetric: both slots of an undirected edge
	// hold the same value.
	edgeProb []float64

	kind       []Kind
	acceptProb []float64 // q(u); meaningful for reckless users only
	theta      []int     // θ(v); meaningful for cautious users only
	qLow       []float64 // cautious acceptance below threshold (default 0)
	qHigh      []float64 // cautious acceptance at/above threshold (default 1)
	bFriend    []float64 // B_f(u)
	bFof       []float64 // B_fof(u)

	cautious []int // sorted list of cautious users

	// Instruments resolved by Instrument; nil (no-op) by default. They
	// are atomic and shared by every State and Realization of this
	// instance, so concurrent attacks may report into one registry.
	mSampleNS      *obs.Histogram // SampleRealization wall time
	mRevealNS      *obs.Histogram // per-acceptance neighborhood-reveal (mutual-count kernel) time
	mRequests      *obs.Counter   // friend requests sent
	mAccepts       *obs.Counter   // requests accepted
	mEdgesRevealed *obs.Counter   // realized edges revealed by acceptances
}

// Instrument resolves the instance's environment metrics — realization
// sampling time, the per-acceptance mutual-count reveal kernel, and
// request/accept counters — against the given registry. Call it before
// the instance is shared across goroutines (the simulator does so right
// after Setup.Build); a nil registry leaves the instance uninstrumented.
func (in *Instance) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	in.mSampleNS = reg.Histogram("osn.sample_realization_ns")
	in.mRevealNS = reg.Histogram("osn.reveal_ns")
	in.mRequests = reg.Counter("osn.requests")
	in.mAccepts = reg.Counter("osn.accepts")
	in.mEdgesRevealed = reg.Counter("osn.edges_revealed")
}

// Params bundles the per-node and per-edge attributes used to build an
// Instance. Slices must have length G.N() (attributes) and G.AdjSize()
// (EdgeProb), except that nil EdgeProb defaults to all-1 (deterministic
// edges).
type Params struct {
	Kind       []Kind
	AcceptProb []float64
	Theta      []int
	BFriend    []float64
	BFof       []float64
	EdgeProb   []float64

	// QLow and QHigh generalize the cautious acceptance model (§III-B):
	// a cautious user below threshold accepts with probability QLow and
	// at/above threshold with probability QHigh. nil defaults to the
	// paper's deterministic linear-threshold model (QLow=0, QHigh=1).
	// Must satisfy 0 <= QLow <= QHigh <= 1; ignored for reckless users.
	QLow, QHigh []float64
}

// NewInstance validates the parameters and builds an immutable instance.
// All slices are copied at the boundary.
func NewInstance(g *graph.Graph, p Params) (*Instance, error) {
	n := g.N()
	if len(p.Kind) != n || len(p.AcceptProb) != n || len(p.Theta) != n ||
		len(p.BFriend) != n || len(p.BFof) != n {
		return nil, fmt.Errorf("%w: n=%d kinds=%d q=%d theta=%d bf=%d bfof=%d",
			ErrShapeMismatch, n, len(p.Kind), len(p.AcceptProb), len(p.Theta), len(p.BFriend), len(p.BFof))
	}
	if p.EdgeProb != nil && len(p.EdgeProb) != g.AdjSize() {
		return nil, fmt.Errorf("%w: edgeProb=%d adjSize=%d", ErrShapeMismatch, len(p.EdgeProb), g.AdjSize())
	}
	if (p.QLow != nil && len(p.QLow) != n) || (p.QHigh != nil && len(p.QHigh) != n) {
		return nil, fmt.Errorf("%w: qLow=%d qHigh=%d n=%d", ErrShapeMismatch, len(p.QLow), len(p.QHigh), n)
	}
	if (p.QLow == nil) != (p.QHigh == nil) {
		return nil, fmt.Errorf("%w: QLow and QHigh must be provided together", ErrShapeMismatch)
	}

	inst := &Instance{
		g:          g,
		kind:       append([]Kind(nil), p.Kind...),
		acceptProb: append([]float64(nil), p.AcceptProb...),
		theta:      append([]int(nil), p.Theta...),
		bFriend:    append([]float64(nil), p.BFriend...),
		bFof:       append([]float64(nil), p.BFof...),
	}
	if p.EdgeProb == nil {
		inst.edgeProb = make([]float64, g.AdjSize())
		for i := range inst.edgeProb {
			inst.edgeProb[i] = 1
		}
	} else {
		inst.edgeProb = append([]float64(nil), p.EdgeProb...)
	}
	if p.QLow == nil {
		// The paper's deterministic linear-threshold model.
		inst.qLow = make([]float64, n)
		inst.qHigh = make([]float64, n)
		for i := range inst.qHigh {
			inst.qHigh[i] = 1
		}
	} else {
		inst.qLow = append([]float64(nil), p.QLow...)
		inst.qHigh = append([]float64(nil), p.QHigh...)
	}

	for u := 0; u < n; u++ {
		switch inst.kind[u] {
		case Reckless:
			if bad(inst.acceptProb[u]) {
				return nil, fmt.Errorf("%w: q(%d) = %v", ErrBadProbability, u, inst.acceptProb[u])
			}
		case Cautious:
			if inst.theta[u] < 1 {
				return nil, fmt.Errorf("%w: θ(%d) = %d", ErrBadThreshold, u, inst.theta[u])
			}
			if bad(inst.qLow[u]) || bad(inst.qHigh[u]) || inst.qLow[u] > inst.qHigh[u] {
				return nil, fmt.Errorf("%w: cautious %d qLow=%v qHigh=%v",
					ErrBadProbability, u, inst.qLow[u], inst.qHigh[u])
			}
			inst.cautious = append(inst.cautious, u)
		default:
			return nil, fmt.Errorf("osn: node %d has invalid kind %d", u, inst.kind[u])
		}
		if inst.bFriend[u] < 0 || inst.bFof[u] < 0 ||
			math.IsNaN(inst.bFriend[u]) || math.IsNaN(inst.bFof[u]) {
			return nil, fmt.Errorf("%w: node %d B_f=%v B_fof=%v", ErrBadBenefit, u, inst.bFriend[u], inst.bFof[u])
		}
		if inst.bFriend[u] < inst.bFof[u] {
			return nil, fmt.Errorf("%w: node %d B_f=%v < B_fof=%v (paper requires B_f >= B_fof)",
				ErrBadBenefit, u, inst.bFriend[u], inst.bFof[u])
		}
	}
	for i, pe := range inst.edgeProb {
		if bad(pe) {
			return nil, fmt.Errorf("%w: edge slot %d = %v", ErrBadProbability, i, pe)
		}
	}
	// Symmetry check: p(u,v) == p(v,u).
	var symErr error
	g.EachEdge(func(u, v int) bool {
		iu, iv := g.IndexOf(u, v), g.IndexOf(v, u)
		if inst.edgeProb[iu] != inst.edgeProb[iv] {
			symErr = fmt.Errorf("osn: edge (%d,%d) probability asymmetric: %v vs %v",
				u, v, inst.edgeProb[iu], inst.edgeProb[iv])
			return false
		}
		return true
	})
	if symErr != nil {
		return nil, symErr
	}
	return inst, nil
}

func bad(p float64) bool { return p < 0 || p > 1 || math.IsNaN(p) }

// Params returns a deep copy of the instance's parameters, suitable for
// modification and rebuilding via NewInstance (used by defense analyses
// that harden users).
func (in *Instance) Params() Params {
	return Params{
		Kind:       append([]Kind(nil), in.kind...),
		AcceptProb: append([]float64(nil), in.acceptProb...),
		Theta:      append([]int(nil), in.theta...),
		BFriend:    append([]float64(nil), in.bFriend...),
		BFof:       append([]float64(nil), in.bFof...),
		EdgeProb:   append([]float64(nil), in.edgeProb...),
		QLow:       append([]float64(nil), in.qLow...),
		QHigh:      append([]float64(nil), in.qHigh...),
	}
}

// Graph returns the potential-friendship graph.
func (in *Instance) Graph() *graph.Graph { return in.g }

// N returns the number of users.
func (in *Instance) N() int { return in.g.N() }

// Kind returns the acceptance model of user u.
func (in *Instance) Kind(u int) Kind { return in.kind[u] }

// AcceptProb returns q(u), the acceptance probability of a reckless user.
func (in *Instance) AcceptProb(u int) float64 { return in.acceptProb[u] }

// Theta returns θ(u), the mutual-friend threshold of a cautious user.
func (in *Instance) Theta(u int) int { return in.theta[u] }

// QLow returns a cautious user's acceptance probability below threshold
// (0 in the paper's deterministic model).
func (in *Instance) QLow(u int) float64 { return in.qLow[u] }

// QHigh returns a cautious user's acceptance probability at/above
// threshold (1 in the paper's deterministic model).
func (in *Instance) QHigh(u int) float64 { return in.qHigh[u] }

// Deterministic reports whether every cautious user follows the paper's
// deterministic linear-threshold model (QLow=0, QHigh=1).
func (in *Instance) Deterministic() bool {
	for _, v := range in.cautious {
		if in.qLow[v] != 0 || in.qHigh[v] != 1 {
			return false
		}
	}
	return true
}

// BFriend returns B_f(u).
func (in *Instance) BFriend(u int) float64 { return in.bFriend[u] }

// BFof returns B_fof(u).
func (in *Instance) BFof(u int) float64 { return in.bFof[u] }

// EdgeProb returns p(u, v) by CSR slot index (see graph.AdjBase).
func (in *Instance) EdgeProb(slot int) float64 { return in.edgeProb[slot] }

// EdgeProbUV returns p(u, v) by endpoints; 0 if the edge is absent from E.
func (in *Instance) EdgeProbUV(u, v int) float64 {
	i := in.g.IndexOf(u, v)
	if i < 0 {
		return 0
	}
	return in.edgeProb[i]
}

// Cautious returns the sorted cautious-user list. The caller must not
// modify it.
func (in *Instance) Cautious() []int { return in.cautious }

// NumCautious returns |V_C|.
func (in *Instance) NumCautious() int { return len(in.cautious) }
