#!/usr/bin/env bash
# dist_e2e.sh — end-to-end chaos test of accudist distributed execution.
#
# The contract under test is the coordinator's headline guarantee: the
# distributed result digest is bit-identical to a local uninterrupted
# `accurun -digest` of the same protocol, even when a worker is
# SIGKILLed mid-range and its lease has to expire and reassign.
#
#   1. compute the reference digest and result JSON with
#      `accurun -digest -out` (no dist)
#   2. start the coordinator with small ranges and a short lease TTL
#   3. start two workers: wa throttled (the doomed straggler), wb free
#   4. kill -9 wa while it holds a lease with unfinished cells
#   5. wb inherits the expired lease; the grid completes
#   6. assert dist.ranges_reassigned >= 1 and digest == reference
#   7. assert the distributed per-policy quantile-sketch snapshots are
#      BYTE-identical to the local run's (the sketch's canonical-merge
#      guarantee, independent of upload order and partition)
#
# Requires: curl, jq. Runs from anywhere inside the repo.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/"

# Protocol parameters — must stay in lockstep between the accurun
# reference invocation and the coordinator's grid flags.
PRESET=slashdot
SCALE=0.02
CAUTIOUS=10
POLICY=abm
K=20
SEED=11
RUNS=60            # 60 cells; ranges of 5 leave room for a mid-range kill
RANGE=5
LEASE=2s
KILL_AFTER_CELLS=5 # durable cells required before the kill

ADDR=127.0.0.1:8471
BASE="http://$ADDR"
WORK=$(mktemp -d)
COORD_PID=
WA_PID=
WB_PID=

cleanup() {
    for pid in "$COORD_PID" "$WA_PID" "$WB_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "dist_e2e: $*"; }
fail() {
    log "FAIL: $*"
    [ -f "$WORK/coord.log" ] && tail -40 "$WORK/coord.log" >&2
    exit 1
}

log "building binaries"
go build -o "$WORK/accudist" ./cmd/accudist
go build -o "$WORK/accurun" ./cmd/accurun

log "computing reference digest and result with accurun (uninterrupted local run)"
"$WORK/accurun" -preset "$PRESET" -scale "$SCALE" -cautious "$CAUTIOUS" \
    -policy "$POLICY" -k "$K" -seed "$SEED" -runs "$RUNS" -digest \
    -out "$WORK/local.json" \
    >"$WORK/reference.txt"
REF_DIGEST=$(awk '/^digest:/ {print $2}' "$WORK/reference.txt")
[ -n "$REF_DIGEST" ] || fail "no digest in accurun output"
[ -f "$WORK/local.json" ] || fail "accurun wrote no -out file"
log "reference digest: $REF_DIGEST"

log "starting coordinator (range=$RANGE lease=$LEASE)"
"$WORK/accudist" -coordinator -addr "$ADDR" -dir "$WORK/data" \
    -range "$RANGE" -lease "$LEASE" -out "$WORK/out.json" \
    -preset "$PRESET" -scale "$SCALE" -cautious "$CAUTIOUS" \
    -policy "$POLICY" -networks 1 -runs "$RUNS" -k "$K" -seed "$SEED" \
    >>"$WORK/coord.log" 2>&1 &
COORD_PID=$!
for _ in $(seq 1 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$COORD_PID" 2>/dev/null || fail "coordinator exited during startup"
    sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "coordinator did not become healthy"

log "starting workers: wa (throttled straggler) and wb"
"$WORK/accudist" -worker -join "$BASE" -id wa -throttle 150ms -poll 100ms \
    >>"$WORK/wa.log" 2>&1 &
WA_PID=$!
"$WORK/accudist" -worker -join "$BASE" -id wb -poll 100ms \
    >>"$WORK/wb.log" 2>&1 &
WB_PID=$!

log "waiting for $KILL_AFTER_CELLS durable cells and a mid-range wa lease, then SIGKILL wa"
KILLED=0
for _ in $(seq 1 600); do
    STATUS=$(curl -sf "$BASE/api/v1/dist/status" || echo '{}')
    COMMITTED=$(echo "$STATUS" | jq -r '.committed // 0')
    DONE=$(echo "$STATUS" | jq -r '.done // false')
    [ "$DONE" = true ] && break # grid outran the poll loop
    WA_MIDRANGE=$(echo "$STATUS" | jq -r '[.ranges[] | select(.worker == "wa" and .remaining > 0)] | length')
    if [ "$COMMITTED" -ge "$KILL_AFTER_CELLS" ] && [ "${WA_MIDRANGE:-0}" -ge 1 ]; then
        kill -9 "$WA_PID"
        wait "$WA_PID" 2>/dev/null || true
        WA_PID=
        KILLED=1
        log "killed wa after $COMMITTED/$RUNS cells, mid-range"
        break
    fi
    sleep 0.05
done
[ "$KILLED" = 1 ] || fail "never caught wa mid-range with >= $KILL_AFTER_CELLS cells durable; grid too small for the kill window"

log "waiting for the coordinator to finish (wb inherits wa's expired lease)"
WAIT_OK=0
for _ in $(seq 1 1200); do
    if ! kill -0 "$COORD_PID" 2>/dev/null; then
        WAIT_OK=1
        break
    fi
    sleep 0.1
done
[ "$WAIT_OK" = 1 ] || fail "coordinator did not exit within 120s of the kill"
wait "$COORD_PID" 2>/dev/null && RC=0 || RC=$?
COORD_PID=
[ "$RC" = 0 ] || fail "coordinator exited with code $RC"
[ -f "$WORK/out.json" ] || fail "coordinator wrote no -out file"

REASSIGNED=$(jq -r '[.metrics.counters[]? | select(.name == "dist.ranges_reassigned") | .value] | add // 0' "$WORK/out.json")
DIST_DIGEST=$(jq -r '.result.digest' "$WORK/out.json")
RECORDS=$(jq -r '.result.records' "$WORK/out.json")
log "dist digest:      $DIST_DIGEST ($RECORDS records, $REASSIGNED range(s) reassigned)"

[ "$REASSIGNED" -ge 1 ] || fail "dist.ranges_reassigned=$REASSIGNED; the killed worker's lease was never reassigned"
[ "$RECORDS" = "$RUNS" ] || fail "records=$RECORDS, want $RUNS"
[ "$DIST_DIGEST" = "$REF_DIGEST" ] || fail "digest mismatch: dist $DIST_DIGEST != reference $REF_DIGEST — distributed result is not bit-identical"

# The quantile sketches must survive the kill/reassign chaos byte for
# byte: for every policy, the distributed finalBenefitSketch snapshot is
# canonically serialized and compared against the local run's.
for policy in $(jq -r '.policies[].policy' "$WORK/local.json"); do
    LOCAL_SK=$(jq -cS ".policies[] | select(.policy == \"$policy\") | .finalBenefitSketch" "$WORK/local.json")
    DIST_SK=$(jq -cS ".result.policies[] | select(.policy == \"$policy\") | .finalBenefitSketch" "$WORK/out.json")
    [ -n "$LOCAL_SK" ] || fail "no local finalBenefitSketch for policy $policy"
    [ "$DIST_SK" = "$LOCAL_SK" ] || fail "policy $policy: distributed quantile sketch differs from local:
  dist:  $DIST_SK
  local: $LOCAL_SK"
    log "policy $policy: quantile sketch byte-identical (p50/p90/p99 $(echo "$LOCAL_SK" | jq -r '"\(.p50)/\(.p90)/\(.p99)"'))"
done

# wb should observe done=true on its next poll and exit 0 on its own.
wait "$WB_PID" 2>/dev/null && WB_RC=0 || WB_RC=$?
WB_PID=
[ "$WB_RC" = 0 ] || log "note: wb exited $WB_RC (coordinator shut down between polls); not fatal"

log "PASS: distributed result with a SIGKILLed worker is bit-identical to the uninterrupted local run"
