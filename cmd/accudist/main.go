// Command accudist runs one Monte-Carlo grid distributed across
// machines: a coordinator that leases cell ranges over HTTP, and workers
// that execute leased ranges with the stock engine and stream completed
// cells back.
//
// Coordinator (owns the durable cell journal and the aggregation):
//
//	accudist -coordinator -addr 127.0.0.1:8471 -spec grid.json -dir run1 -out result.json
//
// Workers (any number, anywhere that can reach the coordinator):
//
//	accudist -worker -join http://127.0.0.1:8471 -id w1
//
// The coordinator exits once every cell of the grid is durable, writing
// {"result": ..., "metrics": ...} to -out. Its result digest is
// bit-identical to `accurun -digest` of the same parameters, no matter
// how many workers ran, died, or duplicated work along the way. Kill the
// coordinator and restart it with -resume to continue from the journal.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/accu-sim/accu/internal/dist"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/serv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "accudist: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("accudist", flag.ContinueOnError)
	var (
		coordinator = fs.Bool("coordinator", false, "run the coordinator")
		worker      = fs.Bool("worker", false, "run a worker")

		// Coordinator flags.
		addr      = fs.String("addr", "127.0.0.1:8471", "coordinator listen address")
		specPath  = fs.String("spec", "", "grid spec JSON file (overrides the inline grid flags)")
		dir       = fs.String("dir", "accudist-data", "coordinator state directory (cell journal)")
		resume    = fs.Bool("resume", false, "resume an existing journal in -dir")
		rangeSize = fs.Int("range", 0, "cells per lease (0 = default 16)")
		leaseTTL  = fs.Duration("lease", 0, "lease TTL without durable progress (0 = default 30s)")
		linger    = fs.Duration("linger", 2*time.Second, "serve the done signal this long after completion before exiting")
		outPath   = fs.String("out", "", "write {result, metrics} JSON here on completion")

		// Inline grid flags, mirroring accurun.
		preset   = fs.String("preset", "slashdot", "network preset")
		scale    = fs.Float64("scale", 0.02, "preset scale factor")
		cautious = fs.Int("cautious", 10, "cautious users per network")
		policies = fs.String("policy", "abm", "comma-separated policy roster")
		networks = fs.Int("networks", 2, "network realizations")
		runs     = fs.Int("runs", 4, "Monte-Carlo runs per network")
		k        = fs.Int("k", 10, "request budget per run")
		seed     = fs.Uint64("seed", 42, "root seed")
		workers  = fs.Int("workers", 0, "engine worker pool per range (0 = GOMAXPROCS)")

		// Worker flags.
		join     = fs.String("join", "", "coordinator base URL (worker mode)")
		id       = fs.String("id", "", "worker ID (default host-pid)")
		poll     = fs.Duration("poll", 500*time.Millisecond, "lease poll interval")
		throttle = fs.Duration("throttle", 0, "sleep per completed cell (testing straggler behavior)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == *worker {
		return fmt.Errorf("pick exactly one of -coordinator or -worker")
	}

	logger := log.New(os.Stderr, "accudist: ", log.LstdFlags)

	if *worker {
		if *join == "" {
			return fmt.Errorf("-worker requires -join")
		}
		wid := *id
		if wid == "" {
			host, _ := os.Hostname()
			wid = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		w := &dist.Worker{
			Coordinator:  strings.TrimRight(*join, "/"),
			ID:           wid,
			PollInterval: *poll,
			Throttle:     *throttle,
			Logf:         logger.Printf,
		}
		return w.Run(ctx)
	}

	spec, err := loadSpec(*specPath, specFlags{
		preset: *preset, scale: *scale, cautious: *cautious, policies: *policies,
		networks: *networks, runs: *runs, k: *k, seed: *seed, workers: *workers,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	reg := obs.New()
	coord, err := dist.New(dist.Config{
		Spec:      spec,
		Dir:       *dir,
		Resume:    *resume,
		RangeSize: *rangeSize,
		LeaseTTL:  *leaseTTL,
		Metrics:   reg,
		Logf:      logger.Printf,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logger.Printf("coordinating %d cells on %s (dir %s)", spec.Networks*spec.Runs, *addr, *dir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		// The close error still matters on this path: it is the last
		// fsync of the cell journal, and a swallowed failure would let
		// -resume silently re-run cells that were reported durable.
		if cerr := coord.Close(); cerr != nil {
			return fmt.Errorf("serve: %w (journal close: %v)", err, cerr)
		}
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
		logger.Printf("signal received; journal is durable, restart with -resume to continue")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		return coord.Close()
	case <-coord.Done():
	}

	// Let parked workers observe done=true on their next poll before the
	// listener goes away.
	time.Sleep(*linger)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)

	res, err := coord.Result()
	if cerr := coord.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	payload := struct {
		Result  *serv.Result  `json:"result"`
		Metrics *obs.Snapshot `json:"metrics"`
	}{Result: res, Metrics: reg.Snapshot()}
	if *outPath != "" {
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "complete: %d records, digest %s\n", res.Records, res.Digest)
	return nil
}

// specFlags carries the inline grid flags into loadSpec.
type specFlags struct {
	preset   string
	scale    float64
	cautious int
	policies string
	networks int
	runs     int
	k        int
	seed     uint64
	workers  int
}

// loadSpec reads the spec file when given, otherwise assembles one from
// the inline flags the same way accurun maps its flags onto a protocol.
func loadSpec(path string, f specFlags) (serv.Spec, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return serv.Spec{}, err
		}
		var spec serv.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return serv.Spec{}, fmt.Errorf("parse spec %s: %w", path, err)
		}
		return spec, nil
	}
	spec := serv.Spec{
		Preset:   f.preset,
		Scale:    f.scale,
		Cautious: &f.cautious,
		Networks: f.networks,
		Runs:     f.runs,
		K:        f.k,
		Seed:     f.seed,
		Workers:  f.workers,
	}
	for _, name := range strings.Split(f.policies, ",") {
		name = strings.TrimSpace(name)
		if name != "" {
			spec.Policies = append(spec.Policies, serv.PolicySpec{Name: name})
		}
	}
	return spec, nil
}
