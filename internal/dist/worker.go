package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/serv"
	"github.com/accu-sim/accu/internal/sim"
)

// Worker executes leased cell ranges against a coordinator. It fetches
// the grid spec once, then loops: lease a range, run the unmodified
// engine restricted to that range, and stream each completed cell back
// as one JSONL upload. A cell only counts as committed once the
// coordinator acks it durable — an upload failure aborts the range (the
// engine treats a Checkpointer.Commit error as fatal), the worker
// reports the lease failed, and the range reassigns.
type Worker struct {
	// Coordinator is the base URL, e.g. "http://127.0.0.1:9090".
	Coordinator string
	// ID names this worker in leases and metrics (required).
	ID string
	// Client is the HTTP client (nil uses http.DefaultClient).
	Client *http.Client
	// PollInterval spaces lease retries when every range is taken and
	// transient-error retries (default 500ms).
	PollInterval time.Duration
	// Throttle sleeps before each cell commit — a test/e2e knob to slow
	// a worker down so stragglers and mid-range kills are reproducible.
	Throttle time.Duration
	// MaxRetries bounds consecutive transient network failures before
	// Run gives up (default 5).
	MaxRetries int
	// Metrics receives engine instrumentation for this worker (optional).
	Metrics *obs.Registry
	// Logf logs worker events (nil disables).
	Logf func(format string, args ...any)
	// Mutate, when non-nil, adjusts the built protocol before each range
	// runs — the chaos-injection hook (wrap Gen/Setup in fault wrappers).
	Mutate func(p *sim.Protocol)
}

// Run executes ranges until the coordinator reports the grid done (nil),
// the context is canceled, or the coordinator stays unreachable past
// MaxRetries consecutive attempts.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		return fmt.Errorf("dist: worker without ID")
	}
	logf := w.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	poll := w.PollInterval
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	maxRetries := w.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 5
	}

	var spec serv.Spec
	if err := w.getJSON(ctx, "/api/v1/dist/spec", &spec); err != nil {
		return fmt.Errorf("dist: fetch spec: %w", err)
	}
	protocol, factories, err := spec.Build(w.Metrics)
	if err != nil {
		return fmt.Errorf("dist: build spec: %w", err)
	}

	transient := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp LeaseResponse
		err := w.postJSON(ctx, "/api/v1/dist/lease", LeaseRequest{Worker: w.ID}, &resp)
		if err != nil {
			var uerr *url.Error
			if transient++; errors.As(err, &uerr) && transient <= maxRetries {
				logf("dist: worker %s: coordinator unreachable (%d/%d): %v", w.ID, transient, maxRetries, err)
				if !sleepCtx(ctx, poll) {
					return ctx.Err()
				}
				continue
			}
			return fmt.Errorf("dist: lease: %w", err)
		}
		transient = 0
		if resp.Done {
			logf("dist: worker %s: grid complete", w.ID)
			return nil
		}
		if resp.Lease == nil {
			if !sleepCtx(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		lease := resp.Lease
		logf("dist: worker %s: leased [%d,%d) as %s", w.ID, lease.Start, lease.End, lease.ID)
		if err := w.runRange(ctx, protocol, factories, lease); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			logf("dist: worker %s: range [%d,%d) failed: %v", w.ID, lease.Start, lease.End, err)
			// Best effort: release the lease so the range reassigns now.
			_ = w.postJSON(ctx, "/api/v1/dist/fail", FailRequest{
				Worker: w.ID, Lease: lease.ID, Error: err.Error(),
			}, &struct{}{})
			if !sleepCtx(ctx, poll) {
				return ctx.Err()
			}
		}
	}
}

// runRange executes one leased range with the stock engine: the
// range-restricted checkpointer marks everything outside [Start, End) as
// already done, so the engine schedules only the leased cells, and each
// completed cell uploads (and must be acked durable) before the engine
// moves on.
func (w *Worker) runRange(ctx context.Context, protocol sim.Protocol, factories []sim.PolicyFactory, lease *Lease) error {
	p := protocol // per-range copy; Checkpoint and hooks are range-local
	p.Checkpoint = &rangeCheckpointer{w: w, ctx: ctx, lease: lease, runs: p.Runs}
	if w.Mutate != nil {
		w.Mutate(&p)
	}
	// Aggregation happens coordinator-side; records are delivered there
	// through the checkpointer's uploads.
	return sim.Run(ctx, p, factories, func(sim.Record) {})
}

// rangeCheckpointer restricts the engine to one leased range and streams
// commits to the coordinator. Done claims every out-of-range cell is
// already recorded (the engine then skips it); Commit uploads the cell
// and fails unless the coordinator acks it durable.
type rangeCheckpointer struct {
	w     *Worker
	ctx   context.Context
	lease *Lease
	runs  int
}

func (rc *rangeCheckpointer) Done(key sim.CellKey) bool {
	ci := indexOf(key, rc.runs)
	return ci < rc.lease.Start || ci >= rc.lease.End
}

func (rc *rangeCheckpointer) Commit(key sim.CellKey, recs []sim.Record) error {
	if rc.w.Throttle > 0 {
		if !sleepCtx(rc.ctx, rc.w.Throttle) {
			return rc.ctx.Err()
		}
	}
	line, err := json.Marshal(sim.CellLine{CellKey: key, Records: recs})
	if err != nil {
		return fmt.Errorf("marshal cell: %w", err)
	}
	line = append(line, '\n')
	q := url.Values{"lease": {rc.lease.ID}, "worker": {rc.w.ID}}
	var resp UploadResponse
	if err := rc.w.post(rc.ctx, "/api/v1/dist/cells?"+q.Encode(), "application/jsonl", bytes.NewReader(line), &resp); err != nil {
		return fmt.Errorf("upload cell (%d,%d): %w", key.Network, key.Run, err)
	}
	return nil
}

// --- HTTP plumbing ---

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Coordinator+path, nil)
	if err != nil {
		return err
	}
	return w.do(req, out)
}

func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return w.post(ctx, path, "application/json", bytes.NewReader(body), out)
}

func (w *Worker) post(ctx context.Context, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	return w.do(req, out)
}

// drainClose drains what is left of a response body (bounded, in case a
// misbehaving peer streams forever) and closes it. A body with unread
// bytes — a JSON decoder stops at the value and leaves the trailing
// newline — forces the transport to discard the connection instead of
// returning it to the keep-alive pool, which under upload load means a
// fresh TCP handshake per cell batch.
func drainClose(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	rc.Close()
}

func (w *Worker) do(req *http.Request, out any) error {
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, eb.Error)
		}
		return fmt.Errorf("%s %s: %s", req.Method, req.URL.Path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps d or until ctx is done; false means canceled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
