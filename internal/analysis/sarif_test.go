package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// sarifFixture builds a FileSet with two files and a mixed batch of
// diagnostics: two live findings with identical (file, analyzer,
// message) — the fingerprint-collision case — one live finding in a
// second file, and one suppressed finding.
func sarifFixture() (*token.FileSet, []Diagnostic) {
	fset := token.NewFileSet()
	fa := fset.AddFile("internal/serv/a.go", -1, 1000)
	fb := fset.AddFile("internal/dist/b.go", -1, 1000)
	return fset, []Diagnostic{
		{Pos: fa.Pos(10), Analyzer: "lockedio", Message: "blocking call os.WriteFile while s.mu.Lock() is held"},
		{Pos: fa.Pos(500), Analyzer: "lockedio", Message: "blocking call os.WriteFile while s.mu.Lock() is held"},
		{Pos: fb.Pos(42), Analyzer: "httpbody", Message: "response body is never closed"},
		{Pos: fb.Pos(700), Analyzer: "timerleak", Message: "time.Tick leaks its Ticker", Suppressed: true},
	}
}

func decodeSARIF(t *testing.T, data []byte) sarifLog {
	t.Helper()
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("emitted SARIF does not round-trip: %v", err)
	}
	return log
}

// TestWriteSARIFStructure checks the envelope: schema/version pinned,
// one run, the full suite in the rules table, every result's ruleIndex
// pointing at its own rule.
func TestWriteSARIFStructure(t *testing.T) {
	fset, diags := sarifFixture()
	suite := NewSuite()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, diags, suite); err != nil {
		t.Fatal(err)
	}
	log := decodeSARIF(t, buf.Bytes())
	if log.Version != "2.1.0" || log.Schema != sarifSchema {
		t.Errorf("version/schema = %q/%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "accuvet" {
		t.Errorf("driver = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(suite) {
		t.Errorf("rules = %d, want %d (whole suite, even analyzers that did not fire)", len(run.Tool.Driver.Rules), len(suite))
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	for i, res := range run.Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("result %d: ruleIndex %d out of range", i, res.RuleIndex)
		}
		if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
			t.Errorf("result %d: ruleIndex points at %q, ruleId says %q", i, got, res.RuleID)
		}
		if len(res.Locations) != 1 || res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %d: missing physical location", i)
		}
	}
}

// TestWriteSARIFSuppressions: only the //accu:allow-covered diagnostic
// carries an inSource suppression.
func TestWriteSARIFSuppressions(t *testing.T) {
	fset, diags := sarifFixture()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, diags, NewSuite()); err != nil {
		t.Fatal(err)
	}
	log := decodeSARIF(t, buf.Bytes())
	suppressed := 0
	for _, res := range log.Runs[0].Results {
		if len(res.Suppressions) > 0 {
			suppressed++
			if res.RuleID != "timerleak" {
				t.Errorf("unexpected suppression on %s result", res.RuleID)
			}
			if res.Suppressions[0].Kind != "inSource" {
				t.Errorf("suppression kind = %q, want inSource", res.Suppressions[0].Kind)
			}
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed results = %d, want 1", suppressed)
	}
}

// TestWriteSARIFFingerprints: fingerprints are present, distinct even
// for same-message findings in one file (occurrence counter), and
// stable across emissions.
func TestWriteSARIFFingerprints(t *testing.T) {
	fset, diags := sarifFixture()
	emit := func() []sarifResult {
		var buf bytes.Buffer
		if err := WriteSARIF(&buf, fset, diags, NewSuite()); err != nil {
			t.Fatal(err)
		}
		return decodeSARIF(t, buf.Bytes()).Runs[0].Results
	}
	first, second := emit(), emit()
	seen := make(map[string]bool)
	for i, res := range first {
		fp := res.PartialFingerprints["accuvetFingerprint/v1"]
		if fp == "" {
			t.Fatalf("result %d: missing fingerprint", i)
		}
		if seen[fp] {
			t.Errorf("result %d: duplicate fingerprint %s", i, fp)
		}
		seen[fp] = true
		if got := second[i].PartialFingerprints["accuvetFingerprint/v1"]; got != fp {
			t.Errorf("result %d: fingerprint not stable across emissions: %s vs %s", i, fp, got)
		}
	}
}

// TestWriteSARIFUnknownAnalyzer: a diagnostic from an analyzer outside
// the provided suite grows the rules table instead of panicking — tests
// compose ad-hoc suites.
func TestWriteSARIFUnknownAnalyzer(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("x.go", -1, 100)
	diags := []Diagnostic{{Pos: f.Pos(1), Analyzer: "adhoc", Message: "m"}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, diags, nil); err != nil {
		t.Fatal(err)
	}
	log := decodeSARIF(t, buf.Bytes())
	run := log.Runs[0]
	if len(run.Tool.Driver.Rules) != 1 || run.Tool.Driver.Rules[0].ID != "adhoc" {
		t.Fatalf("rules = %+v, want the ad-hoc analyzer registered on the fly", run.Tool.Driver.Rules)
	}
	if run.Results[0].RuleIndex != 0 {
		t.Errorf("ruleIndex = %d, want 0", run.Results[0].RuleIndex)
	}
}
