// Fixture for the errdrop analyzer: discarded, blank-assigned and
// defer/go-dropped errors on durability-critical call chains — direct
// roots, the module journal surface, and in-package summarized helpers.
package sim

import "os"

// CellJournal mirrors the production journal: its Commit/Sync/Close are
// module durable roots recognized by receiver type.
type CellJournal struct{}

func (j *CellJournal) Commit(line string) error { return nil }

func (j *CellJournal) Sync() error { return nil }

func (j *CellJournal) Close() error { return nil }

func discardedCommit(j *CellJournal, line string) {
	j.Commit(line) // want `error from durable call \(CellJournal\)\.Commit discarded`
}

func blankSync(j *CellJournal) {
	_ = j.Sync() // want `error from durable call \(CellJournal\)\.Sync blank-assigned`
}

func deferredClose(j *CellJournal) {
	defer j.Close() // want `error from durable call \(CellJournal\)\.Close deferred with its error discarded`
}

func discardedWrite(path string, data []byte) {
	os.WriteFile(path, data, 0o600) // want `error from durable call os\.WriteFile discarded`
}

// swap is the in-package hop the summary propagates through.
func swap(tmp, path string) error {
	return os.Rename(tmp, path)
}

func discardedViaHelper(tmp, path string) {
	swap(tmp, path) // want `error from durable call swap → os\.Rename discarded`
}

func asyncSwap(tmp, path string) {
	go swap(tmp, path) // want `error from durable call swap → os\.Rename spawned with its error discarded`
}

// checked errors are the point: clean.
func checkedCommit(j *CellJournal, line string) error {
	if err := j.Commit(line); err != nil {
		return err
	}
	return j.Sync()
}

// non-durable discards are not this analyzer's business: clean.
func ping() error { return nil }

func discardedPing() {
	ping()
}

// best-effort cleanup on an already-failing path is the audited
// exception.
func allowedBestEffort(j *CellJournal) error {
	if err := j.Sync(); err != nil {
		//accu:allow errdrop -- best-effort close on the failure path; Sync error already propagates
		j.Close()
		return err
	}
	return nil
}
