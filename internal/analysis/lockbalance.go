package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockBalance returns the lock-discipline analyzer. It runs two checks
// over every package:
//
//  1. Path balance: a sync.Mutex/RWMutex Lock (or RLock) must be
//     released on every control-flow path to function exit. A lock
//     covered by a `defer x.Unlock()` anywhere in the function is
//     balanced by construction; everything else is checked with a
//     forward may-analysis over the function's CFG, so early returns,
//     panics, breaks and conditionally-skipped unlocks are all caught.
//  2. Copies: lock-bearing values (anything transitively containing a
//     sync or sync/atomic synchronization primitive) must not be
//     copied — by-value parameters and receivers, assignments from
//     addressable expressions, by-value range iteration and by-value
//     call arguments are all flagged.
//
// Functions that intentionally return holding a lock (unlock-in-callee
// protocols) are the audited exception: annotate the Lock line with
// //accu:allow lockbalance -- <why>.
func LockBalance() *Analyzer {
	a := &Analyzer{
		Name: "lockbalance",
		Doc: "require every sync.Mutex/RWMutex Lock to be released on all " +
			"CFG paths to function exit, and forbid copying lock-bearing values",
	}
	a.Run = func(pass *Pass) error {
		funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
			checkLockPaths(pass, body)
		})
		checkLockCopies(pass)
		return nil
	}
	return a
}

// lockFact keys one held lock in the dataflow state: the receiver
// expression's canonical text plus the read/write mode, so RLock pairs
// with RUnlock and Lock with Unlock.
type lockFact struct {
	key  string
	read bool
}

// checkLockPaths runs the path-balance dataflow over one function body.
func checkLockPaths(pass *Pass, body *ast.BlockStmt) {
	cfg := NewCFG(body)

	// A deferred unlock covers every exit path (including panics), so
	// the matching Lock generates no obligation at all.
	deferred := make(map[lockFact]bool)
	for _, d := range cfg.Defers {
		if f, op, ok := lockMethodCall(pass, d.Call); ok && isUnlockOp(op) {
			deferred[f] = true
		}
	}

	_, exit := cfg.ForwardMay(func(n ast.Node, facts Facts) {
		walkBlockNode(n, true, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f, op, ok := lockMethodCall(pass, call)
			if !ok {
				return true
			}
			if isUnlockOp(op) {
				delete(facts, f)
			} else if !deferred[f] {
				facts[f] = call.Pos()
			}
			return true
		})
	})

	for k, pos := range exit {
		f := k.(lockFact)
		op, unlock := "Lock", "Unlock"
		if f.read {
			op, unlock = "RLock", "RUnlock"
		}
		pass.Reportf(pos,
			"%s.%s() is not released on every path to function exit; defer %s.%s() immediately or unlock before each return",
			f.key, op, f.key, unlock)
	}
}

// lockMethodCall recognizes a call to a sync mutex method and returns
// the lock's dataflow key and the method name. It matches methods
// declared in package sync whose name is Lock/Unlock/RLock/RUnlock —
// direct calls, promoted embedded mutexes and sync.Locker interface
// calls alike.
func lockMethodCall(pass *Pass, call *ast.CallExpr) (lockFact, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockFact{}, "", false
	}
	var m *types.Func
	if s, ok := pass.Info.Selections[sel]; ok {
		m, _ = s.Obj().(*types.Func)
	} else if f, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
		m = f
	}
	if m == nil || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return lockFact{}, "", false
	}
	switch m.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockFact{}, "", false
	}
	key := types.ExprString(ast.Unparen(sel.X))
	read := m.Name() == "RLock" || m.Name() == "RUnlock"
	return lockFact{key: key, read: read}, m.Name(), true
}

func isUnlockOp(op string) bool { return op == "Unlock" || op == "RUnlock" }

// checkLockCopies flags by-value copies of lock-bearing types.
func checkLockCopies(pass *Pass) {
	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies lock-bearing value of type %s; use a pointer", what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	lockBearing := func(t types.Type) bool { return lockBearingType(t, make(map[types.Type]bool), 0) }

	checkFieldList(pass, lockBearing, report)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					// `_ = x` evaluates and discards; no second copy
					// becomes reachable.
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if t, ok := copiesLockValue(pass, rhs, lockBearing); ok {
						report(rhs.Pos(), "assignment", t)
					}
				}
			case *ast.RangeStmt:
				if t := rangeValueType(pass, n.Value); t != nil && lockBearing(t) {
					if _, isPtr := t.(*types.Pointer); !isPtr {
						report(n.Value.Pos(), "range value", t)
					}
				}
			case *ast.CallExpr:
				fun := ast.Unparen(n.Fun)
				if id, ok := fun.(*ast.Ident); ok {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						return true // len/cap/new/... do not copy
					}
					if _, isType := pass.Info.Uses[id].(*types.TypeName); isType {
						return true // conversion of a lock value is caught at its use
					}
				}
				for _, arg := range n.Args {
					if t, ok := copiesLockValue(pass, arg, lockBearing); ok {
						report(arg.Pos(), "call argument", t)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if t, ok := copiesLockValue(pass, res, lockBearing); ok {
						report(res.Pos(), "return", t)
					}
				}
			}
			return true
		})
	}
}

// rangeValueType resolves the static type of a range statement's value
// variable. A `:=` range declares the ident (types.Info.Defs, not
// Types); `=` form and blank values resolve through Uses/Types.
func rangeValueType(pass *Pass, value ast.Expr) types.Type {
	if value == nil {
		return nil
	}
	if id, ok := ast.Unparen(value).(*ast.Ident); ok {
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return nil // blank identifier
		}
		return obj.Type()
	}
	if tv, ok := pass.Info.Types[value]; ok {
		return tv.Type
	}
	return nil
}

// checkFieldList flags lock-bearing by-value receivers and parameters of
// every function declaration and literal.
func checkFieldList(pass *Pass, lockBearing func(types.Type) bool, report func(token.Pos, string, types.Type)) {
	checkFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if lockBearing(tv.Type) {
				report(field.Type.Pos(), what, tv.Type)
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFields(n.Recv, "by-value receiver")
				checkFields(n.Type.Params, "by-value parameter")
			case *ast.FuncLit:
				checkFields(n.Type.Params, "by-value parameter")
			}
			return true
		})
	}
}

// copiesLockValue reports whether evaluating e copies a lock-bearing
// value: e must be an addressable-shaped expression (a variable, field,
// index or dereference — composite literals and calls produce fresh
// values, which may be moved freely) of a non-pointer lock-bearing type.
func copiesLockValue(pass *Pass, e ast.Expr, lockBearing func(types.Type) bool) (types.Type, bool) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return nil, false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil || !tv.IsValue() {
		return nil, false
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return nil, false
	}
	if !lockBearing(tv.Type) {
		return nil, false
	}
	return tv.Type, true
}

// syncNoCopyTypes are the sync / sync/atomic named types that must not
// be copied after first use.
var syncNoCopyTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
		"Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// lockBearingType reports whether t transitively contains a sync
// primitive by value (following struct fields and non-empty arrays, but
// not pointers, slices, maps or channels — those share, they don't
// copy).
func lockBearingType(t types.Type, seen map[types.Type]bool, depth int) bool {
	t = types.Unalias(t)
	if depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if names, ok := syncNoCopyTypes[obj.Pkg().Path()]; ok && names[obj.Name()] {
				return true
			}
		}
		return lockBearingType(named.Underlying(), seen, depth+1)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockBearingType(u.Field(i).Type(), seen, depth+1) {
				return true
			}
		}
	case *types.Array:
		if u.Len() > 0 {
			return lockBearingType(u.Elem(), seen, depth+1)
		}
	}
	return false
}
