package osn

import (
	"errors"
	"fmt"

	"github.com/accu-sim/accu/internal/obs"
)

// Errors returned by State.Request.
var (
	ErrAlreadyRequested = errors.New("osn: user already received a request")
	ErrBadUser          = errors.New("osn: user id out of range")
)

// State is the attacker's partial realization ω: which requests were sent
// and answered, which neighborhoods are revealed, the derived
// friend/friend-of-friend sets, and the collected benefit f(dom(ω), φ).
//
// The mutual-friend counters are exact attacker knowledge: every accepted
// user's realized neighborhood is revealed on acceptance, and the
// attacker's friends are exactly the accepted users, so
// mutual[v] = |N(s) ∩ N(v)| at all times.
//
// A State is single-goroutine; clone per concurrent run.
type State struct {
	inst *Instance
	real *Realization

	requested []bool
	friend    []bool
	mutual    []int32

	benefit         float64
	requests        int
	numFriends      int
	cautiousFriends int
	fofCount        int
}

// NewState starts an attack against the given realization: no requests
// sent, F = FOF = ∅.
func NewState(re *Realization) *State {
	n := re.inst.N()
	return &State{
		inst:      re.inst,
		real:      re,
		requested: make([]bool, n),
		friend:    make([]bool, n),
		mutual:    make([]int32, n),
	}
}

// Instance returns the underlying problem instance.
func (st *State) Instance() *Instance { return st.inst }

// Realization returns the ground truth this attack runs against.
func (st *State) Realization() *Realization { return st.real }

// Outcome reports the result of one friend request.
type Outcome struct {
	// User is the request target.
	User int
	// Accepted reports whether the request was accepted.
	Accepted bool
	// Gain is the realized marginal benefit of this request:
	// f(dom(ω)∪{u}, φ) − f(dom(ω), φ).
	Gain float64
	// Cautious reports whether the target is a cautious user.
	Cautious bool
}

// Request sends a friend request to u, applies the acceptance model,
// reveals N(u) on acceptance, and updates the benefit accounting. A user
// may receive at most one request (Algorithm 1 selects from V \ Q).
func (st *State) Request(u int) (Outcome, error) {
	if u < 0 || u >= st.inst.N() {
		return Outcome{}, fmt.Errorf("%w: %d", ErrBadUser, u)
	}
	if st.requested[u] {
		return Outcome{}, fmt.Errorf("%w: %d", ErrAlreadyRequested, u)
	}
	st.requested[u] = true
	st.requests++
	st.inst.mRequests.Inc()

	out := Outcome{User: u, Cautious: st.inst.kind[u] == Cautious}
	switch st.inst.kind[u] {
	case Reckless:
		out.Accepted = st.real.accepts[u]
	case Cautious:
		// Generalized §III-B model: the pre-drawn coin for the current
		// threshold condition. Under the paper's deterministic model
		// this is exactly mutual >= θ.
		out.Accepted = st.real.AcceptsCautious(u, int(st.mutual[u]) >= st.inst.theta[u])
	}
	if !out.Accepted {
		return out, nil
	}

	// u joins F. If u was a friend-of-friend its B_fof was already
	// collected; upgrade to the friend benefit.
	gain := st.inst.bFriend[u]
	if st.mutual[u] > 0 {
		gain -= st.inst.bFof[u]
		st.fofCount--
	}
	st.friend[u] = true
	st.numFriends++
	if out.Cautious {
		st.cautiousFriends++
	}

	// Reveal N(u): every realized neighbor v gains one mutual friend
	// with the attacker; non-friends entering FOF yield B_fof(v). This
	// loop is the incremental mutual-count kernel, timed when the
	// instance is instrumented.
	st.inst.mAccepts.Inc()
	span := obs.StartSpan(st.inst.mRevealNS)
	base := st.inst.g.AdjBase(u)
	revealed := int64(0)
	for i, v := range st.inst.g.Neighbors(u) {
		if !st.real.edgeExists[base+i] {
			continue
		}
		revealed++
		if st.mutual[v] == 0 && !st.friend[v] {
			gain += st.inst.bFof[v]
			st.fofCount++
		}
		st.mutual[v]++
	}
	span.End()
	st.inst.mEdgesRevealed.Add(revealed)

	st.benefit += gain
	out.Gain = gain
	return out, nil
}

// Requested reports whether u already received a request.
func (st *State) Requested(u int) bool { return st.requested[u] }

// IsFriend reports whether u accepted a request (u ∈ F).
func (st *State) IsFriend(u int) bool { return st.friend[u] }

// IsFOF reports whether u is currently a friend-of-friend: not a friend
// but adjacent (via a realized, observed edge) to at least one friend.
func (st *State) IsFOF(u int) bool { return !st.friend[u] && st.mutual[u] > 0 }

// Mutual returns |N(s) ∩ N(u)|, the attacker's mutual-friend count with u.
func (st *State) Mutual(u int) int { return int(st.mutual[u]) }

// WouldAccept reports whether a request to u could be accepted right now,
// as far as the attacker can predict: for cautious users it reports
// whether the current acceptance probability is positive (under the
// paper's deterministic model, exactly the threshold condition); for
// reckless users it reports true (acceptance is probabilistic and unknown
// in advance).
func (st *State) WouldAccept(u int) bool {
	if st.inst.kind[u] == Cautious {
		return st.AcceptChance(u) > 0
	}
	return true
}

// AcceptChance returns the attacker's current estimate of the probability
// that a request to u is accepted: q(u) for reckless users; the
// condition-matched QLow/QHigh for cautious users.
func (st *State) AcceptChance(u int) float64 {
	if st.inst.kind[u] == Cautious {
		if int(st.mutual[u]) >= st.inst.theta[u] {
			return st.inst.qHigh[u]
		}
		return st.inst.qLow[u]
	}
	return st.inst.acceptProb[u]
}

// Benefit returns the total collected benefit f(dom(ω), φ).
func (st *State) Benefit() float64 { return st.benefit }

// Requests returns the number of requests sent (|dom(ω)|).
func (st *State) Requests() int { return st.requests }

// Friends returns |F|.
func (st *State) Friends() int { return st.numFriends }

// CautiousFriends returns the number of cautious users in F.
func (st *State) CautiousFriends() int { return st.cautiousFriends }

// FOFCount returns |FOF|.
func (st *State) FOFCount() int { return st.fofCount }

// ClassCounts returns the §II-A partition sizes from the attacker's
// perspective: friends F, friends-of-friends FOF, and strangers S
// (everyone else). The three always sum to N.
func (st *State) ClassCounts() (friends, fof, strangers int) {
	friends = st.numFriends
	fof = st.fofCount
	strangers = st.inst.N() - friends - fof
	return friends, fof, strangers
}

// PosteriorEdgeProb returns the attacker's belief that the potential edge
// at the CSR slot (u, Neighbors(u)[i]) exists: 1 or 0 once observed
// (either endpoint is a friend), the prior p(u, v) otherwise.
func (st *State) PosteriorEdgeProb(u, v, slot int) float64 {
	if st.friend[u] || st.friend[v] {
		if st.real.edgeExists[slot] {
			return 1
		}
		return 0
	}
	return st.inst.edgeProb[slot]
}

// RecomputeBenefit recomputes f(dom(ω), φ) from scratch — O(N + M) — for
// validating the incremental accounting in tests.
func (st *State) RecomputeBenefit() float64 {
	var total float64
	for u := 0; u < st.inst.N(); u++ {
		if st.friend[u] {
			total += st.inst.bFriend[u]
			continue
		}
		// FOF: some friend w has a realized edge to u.
		base := st.inst.g.AdjBase(u)
		for i, w := range st.inst.g.Neighbors(u) {
			if st.friend[w] && st.real.edgeExists[base+i] {
				total += st.inst.bFof[u]
				break
			}
		}
	}
	return total
}

// Reset rebinds the state to a new realization as if freshly built by
// NewState, reusing the per-user buffers when their capacity allows. It
// exists for schedulers that execute many attacks per worker goroutine
// (internal/sim's cell queue) and want to avoid three O(N) allocations
// per cell; a Reset state is observationally identical to a new one.
func (st *State) Reset(re *Realization) {
	n := re.inst.N()
	st.inst = re.inst
	st.real = re
	st.requested = resetBools(st.requested, n)
	st.friend = resetBools(st.friend, n)
	st.mutual = resetInt32s(st.mutual, n)
	st.benefit = 0
	st.requests = 0
	st.numFriends = 0
	st.cautiousFriends = 0
	st.fofCount = 0
}

// resetBools returns a zeroed bool slice of length n, reusing s's backing
// array when it is large enough.
func resetBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// resetInt32s returns a zeroed int32 slice of length n, reusing s's
// backing array when it is large enough.
func resetInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Clone returns an independent copy of the state sharing the immutable
// instance and realization.
func (st *State) Clone() *State {
	cp := *st
	cp.requested = append([]bool(nil), st.requested...)
	cp.friend = append([]bool(nil), st.friend...)
	cp.mutual = append([]int32(nil), st.mutual...)
	return &cp
}
