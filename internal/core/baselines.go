package core

import (
	"fmt"
	"sort"

	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/pagerank"
	"github.com/accu-sim/accu/internal/rng"
)

// StaticRank is a non-adaptive baseline that requests users in a fixed
// order computed once from the potential graph (ignoring observations),
// as the MaxDegree and PageRank baselines of §IV-A do.
type StaticRank struct {
	name string
	rank func(st *osn.State) ([]int, error)

	order []int
	next  int
}

var _ Policy = (*StaticRank)(nil)

// NewMaxDegree returns the MaxDegree baseline: iteratively pick the
// highest-degree user in the network. Ties break toward lower ids.
func NewMaxDegree() *StaticRank {
	return &StaticRank{
		name: "maxdegree",
		rank: func(st *osn.State) ([]int, error) {
			g := st.Instance().Graph()
			order := identity(g.N())
			sort.SliceStable(order, func(i, j int) bool {
				return g.Degree(order[i]) > g.Degree(order[j])
			})
			return order, nil
		},
	}
}

// NewPageRank returns the PageRank baseline: pick users by descending
// PageRank score on the potential graph.
func NewPageRank() *StaticRank {
	return &StaticRank{
		name: "pagerank",
		rank: func(st *osn.State) ([]int, error) {
			scores, err := pagerank.Scores(st.Instance().Graph(), pagerank.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("core: pagerank baseline: %w", err)
			}
			order := identity(len(scores))
			sort.SliceStable(order, func(i, j int) bool {
				return scores[order[i]] > scores[order[j]]
			})
			return order, nil
		},
	}
}

// Name implements Policy.
func (s *StaticRank) Name() string { return s.name }

// Init implements Policy.
func (s *StaticRank) Init(st *osn.State) error {
	order, err := s.rank(st)
	if err != nil {
		return err
	}
	s.order = order
	s.next = 0
	return nil
}

// SelectNext implements Policy.
func (s *StaticRank) SelectNext(st *osn.State) (int, bool) {
	for s.next < len(s.order) {
		u := s.order[s.next]
		s.next++
		if !st.Requested(u) {
			return u, true
		}
	}
	return 0, false
}

// Observe implements Policy.
func (s *StaticRank) Observe(*osn.State, osn.Outcome) {}

// Reseed implements Reusable: the static order is recomputed by Init and
// never depends on a seed.
func (s *StaticRank) Reseed(rng.Seed) {}

// Random is the uniform-random baseline.
type Random struct {
	seed  rng.Seed
	order []int
	next  int
}

var _ Policy = (*Random)(nil)

// NewRandom returns the random baseline; the seed fixes the request order
// for reproducibility.
func NewRandom(seed rng.Seed) *Random { return &Random{seed: seed} }

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Init implements Policy.
func (r *Random) Init(st *osn.State) error {
	r.order = identity(st.Instance().N())
	rng.Shuffle(r.seed.Split("random-policy").Rand(), r.order)
	r.next = 0
	return nil
}

// SelectNext implements Policy.
func (r *Random) SelectNext(st *osn.State) (int, bool) {
	for r.next < len(r.order) {
		u := r.order[r.next]
		r.next++
		if !st.Requested(u) {
			return u, true
		}
	}
	return 0, false
}

// Observe implements Policy.
func (r *Random) Observe(*osn.State, osn.Outcome) {}

// Reseed implements Reusable: a reseeded Random is indistinguishable from
// NewRandom(seed) — Init re-derives the shuffle from the stored seed.
func (r *Random) Reseed(seed rng.Seed) { r.seed = seed }

// Scheduler-level reuse compliance for all shipped policies.
var (
	_ Reusable = (*ABM)(nil)
	_ Reusable = (*StaticRank)(nil)
	_ Reusable = (*Random)(nil)
)

func identity(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}
