package graph

import (
	"math/rand/v2"
	"testing"
)

func TestCoreNumbersPath(t *testing.T) {
	g := path(t, 5)
	for u, c := range g.CoreNumbers() {
		if c != 1 {
			t.Errorf("path coreness[%d] = %d, want 1", u, c)
		}
	}
}

func TestCoreNumbersClique(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			mustAdd(t, b, i, j)
		}
	}
	g := b.Freeze()
	for u, c := range g.CoreNumbers() {
		if c != 4 {
			t.Errorf("K5 coreness[%d] = %d, want 4", u, c)
		}
	}
	if g.Degeneracy() != 4 {
		t.Errorf("degeneracy = %d", g.Degeneracy())
	}
}

func TestCoreNumbersCliqueWithTail(t *testing.T) {
	// Triangle {0,1,2} plus tail 2-3-4: triangle is 2-core, tail 1-core.
	b := NewBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}} {
		mustAdd(t, b, e[0], e[1])
	}
	g := b.Freeze()
	cores := g.CoreNumbers()
	want := []int{2, 2, 2, 1, 1}
	for u := range want {
		if cores[u] != want[u] {
			t.Errorf("coreness[%d] = %d, want %d (all %v)", u, cores[u], want[u], cores)
		}
	}
}

func TestCoreNumbersIsolatedAndEmpty(t *testing.T) {
	b := NewBuilder(3)
	mustAdd(t, b, 0, 1)
	g := b.Freeze()
	cores := g.CoreNumbers()
	if cores[2] != 0 {
		t.Errorf("isolated coreness = %d", cores[2])
	}
	empty := NewBuilder(0).Freeze()
	if got := empty.CoreNumbers(); len(got) != 0 {
		t.Errorf("empty graph cores = %v", got)
	}
	if empty.Degeneracy() != 0 {
		t.Error("empty degeneracy != 0")
	}
}

// TestCoreNumbersMatchBruteForce cross-checks the peeling algorithm
// against iterative deletion on random graphs.
func TestCoreNumbersMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 42))
	for trial := 0; trial < 10; trial++ {
		n := 30 + r.IntN(30)
		b := NewBuilder(n)
		for i := 0; i < n*3; i++ {
			_, _ = b.AddEdge(r.IntN(n), r.IntN(n))
		}
		g := b.Freeze()
		got := g.CoreNumbers()
		want := bruteForceCores(g)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("trial %d node %d: got %d want %d", trial, u, got[u], want[u])
			}
		}
	}
}

// bruteForceCores computes core numbers by repeated k-core extraction.
func bruteForceCores(g *Graph) []int {
	n := g.N()
	cores := make([]int, n)
	for k := 1; ; k++ {
		// Iteratively remove nodes with degree < k.
		alive := make([]bool, n)
		for u := range alive {
			alive[u] = true
		}
		for changed := true; changed; {
			changed = false
			for u := 0; u < n; u++ {
				if !alive[u] {
					continue
				}
				d := 0
				for _, v := range g.Neighbors(u) {
					if alive[v] {
						d++
					}
				}
				if d < k {
					alive[u] = false
					changed = true
				}
			}
		}
		any := false
		for u := 0; u < n; u++ {
			if alive[u] {
				cores[u] = k
				any = true
			}
		}
		if !any {
			return cores
		}
	}
}
