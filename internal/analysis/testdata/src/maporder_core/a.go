// Fixture: maporder in a strict deterministic package (type-checked as
// .../internal/core). Map iteration whose body has order-dependent
// effects must be flagged; order-insensitive reductions and slice
// iteration stay legal.
package core

import (
	"math/rand/v2"

	"example.test/internal/obs"
)

// Journal stands in for a record sink.
type Journal struct{ users []int }

// RecordBatch appends one batch of users.
func (j *Journal) RecordBatch(users []int) { j.users = append(j.users, users...) }

func appendsUnderMap(m map[int]float64) []int {
	var keys []int
	for k := range m { // want `map iteration order is random, but this loop body appends to a slice`
		keys = append(keys, k)
	}
	return keys
}

func drawsUnderMap(m map[int]float64, r *rand.Rand) float64 {
	var total float64
	for range m { // want `map iteration order is random, but this loop body consumes random numbers \(Rand\.Float64\)`
		total += r.Float64()
	}
	return total
}

func countsUnderMap(m map[string]int, reg *obs.Registry) {
	c := reg.Counter("core.map_hits")
	for range m { // want `map iteration order is random, but this loop body updates obs instrument Counter\.Inc`
		c.Inc()
	}
}

func recordsUnderMap(m map[int]bool, j *Journal) {
	for u := range m { // want `map iteration order is random, but this loop body writes records via RecordBatch`
		j.RecordBatch([]int{u})
	}
}

func reductionIsFine(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

func sliceAppendIsFine(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func allowedWithReason(m map[int]float64) []int {
	var keys []int
	//accu:allow maporder -- fixture: sorted by the caller
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
