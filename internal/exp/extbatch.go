package exp

import (
	"context"
	"fmt"

	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/stats"
)

// batchSizes is the parallel-batching sweep of the ext-batch experiment.
var batchSizes = []int{1, 5, 10, 25}

// ExtBatch is an extension experiment beyond the paper's figures: it
// quantifies the cost of parallel batching (reference [4] of the paper) —
// sending requests in batches of b with no observations inside a batch —
// against the fully adaptive one-at-a-time attacker, on the same budget.
// The adaptivity gap is expected to widen with cautious users, because a
// batch cannot court a cautious user and then immediately exploit the
// unlocked threshold.
func ExtBatch(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	dataset := fig45Dataset(cfg)
	g, _, err := cfg.generator(dataset)
	if err != nil {
		return nil, err
	}
	abm, err := sim.ABMFactory(cfg.Weights, cfg.abmOptions()...)
	if err != nil {
		return nil, err
	}

	header := []string{"batch", "benefit", "cautious-friends", "vs-adaptive"}
	var rows [][]string
	var adaptiveMean float64
	for _, b := range batchSizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var benefit, cautious stats.Welford
		protocol := cfg.protocol(g, cfg.setup(), cfg.Seed.Split("extbatch")) // same seed: paired across batch sizes
		protocol.BatchSize = b
		err := cfg.run(ctx, fmt.Sprintf("extbatch-%d", b), protocol, []sim.PolicyFactory{abm}, func(rec sim.Record) {
			benefit.Add(rec.Result.Benefit)
			cautious.Add(float64(rec.Result.CautiousFriends))
		})
		if err != nil {
			return nil, fmt.Errorf("exp: extbatch b=%d: %w", b, err)
		}
		if b == 1 {
			adaptiveMean = benefit.Mean()
		}
		ratio := 1.0
		if adaptiveMean > 0 {
			ratio = benefit.Mean() / adaptiveMean
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%.1f ±%.1f", benefit.Mean(), benefit.CI95()),
			fmt.Sprintf("%.2f ±%.2f", cautious.Mean(), cautious.CI95()),
			fmt.Sprintf("%.3f", ratio),
		})
	}

	tables := []stats.Table{{Header: header, Rows: rows}}
	return newReport("ext-batch", fmt.Sprintf("Extension: parallel batching vs full adaptivity (%s, k=%d)", dataset, cfg.K), tables, []string{
		"batch=1 is the paper's fully adaptive attacker; larger batches trade benefit for parallelism (reference [4])",
	}), nil
}
