package serv

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// testSpec is a valid tiny spec: the facebook preset floors at 64 nodes,
// so validation passes and (in the real-executor tests) cells run fast.
func testSpec() Spec {
	cautious := 4 // the 64-node floor graph lacks candidates for the default 10
	return Spec{
		Preset:   "facebook",
		Scale:    0.001,
		Cautious: &cautious,
		Policies: []PolicySpec{{Name: "random"}, {Name: "maxdegree"}},
		Networks: 2,
		Runs:     2,
		K:        3,
		Seed:     42,
		Workers:  1,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, s *Server, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if j.State == want {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := s.Get(id)
	t.Fatalf("job %s: state %s, want %s (error %q)", id, j.State, want, j.Error)
	return Job{}
}

// instantOK is an execute stub that succeeds immediately.
func instantOK(context.Context, *entry) (*Result, error) {
	return &Result{Digest: "stub"}, nil
}

// blockUntilCancel is an execute stub that parks until the job context is
// cancelled (by client cancel or drain).
func blockUntilCancel(ctx context.Context, _ *entry) (*Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestSubmitAssignsIDAndPersists(t *testing.T) {
	s := newTestServer(t, Config{})
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.ID != "j000000" {
		t.Errorf("auto ID = %q, want j000000", job.ID)
	}
	if job.State != StateQueued {
		t.Errorf("state = %s, want queued", job.State)
	}
	if job.Tenant != "default" {
		t.Errorf("tenant = %q, want default", job.Tenant)
	}
	if want := int64(8); job.Progress.Total != want { // 2 nets × 2 runs × 2 policies
		t.Errorf("total = %d, want %d", job.Progress.Total, want)
	}
	if _, err := os.Stat(s.store.jobPath(job.ID)); err != nil {
		t.Errorf("job document not persisted: %v", err)
	}
}

func TestSubmitRejectsInvalid(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  SubmitRequest
	}{
		{"bad id", SubmitRequest{ID: "Bad-ID", Spec: testSpec()}},
		{"unknown preset", SubmitRequest{Spec: func() Spec { sp := testSpec(); sp.Preset = "nope"; return sp }()}},
		{"no policies", SubmitRequest{Spec: func() Spec { sp := testSpec(); sp.Policies = nil; return sp }()}},
		{"unknown policy", SubmitRequest{Spec: func() Spec {
			sp := testSpec()
			sp.Policies = []PolicySpec{{Name: "oracle"}}
			return sp
		}()}},
		{"duplicate policy", SubmitRequest{Spec: func() Spec {
			sp := testSpec()
			sp.Policies = []PolicySpec{{Name: "random"}, {Name: "random"}}
			return sp
		}()}},
		{"zero runs", SubmitRequest{Spec: func() Spec { sp := testSpec(); sp.Runs = 0; return sp }()}},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.req); err == nil {
			t.Errorf("%s: Submit accepted, want error", tc.name)
		}
	}
}

func TestDuplicateSubmit(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Submit(SubmitRequest{ID: "mine", Spec: testSpec()}); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	_, err := s.Submit(SubmitRequest{ID: "mine", Spec: testSpec()})
	if !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("second Submit err = %v, want ErrDuplicateJob", err)
	}
	if got := counterValue(t, s, "serv.duplicate_rejections"); got != 1 {
		t.Errorf("duplicate_rejections = %v, want 1", got)
	}
}

// counterValue reads one counter from the server registry snapshot.
func counterValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	for _, c := range s.Registry().Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %s not in snapshot", name)
	return 0
}

func TestQuotaExceeded(t *testing.T) {
	s := newTestServer(t, Config{
		DefaultQuota: 2,
		TenantQuotas: map[string]int{"vip": 3},
	})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(SubmitRequest{Spec: testSpec()}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	_, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third Submit err = %v, want ErrQuotaExceeded", err)
	}
	// Another tenant's quota is independent, and an override applies.
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(SubmitRequest{Tenant: "vip", Spec: testSpec()}); err != nil {
			t.Fatalf("vip Submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(SubmitRequest{Tenant: "vip", Spec: testSpec()}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("vip overflow err = %v, want ErrQuotaExceeded", err)
	}
	if got := counterValue(t, s, "serv.quota_rejections"); got != 2 {
		t.Errorf("quota_rejections = %v, want 2", got)
	}
}

func TestQuotaSlotFreedByTerminal(t *testing.T) {
	s := newTestServer(t, Config{DefaultQuota: 1})
	s.execute = instantOK
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := s.Submit(SubmitRequest{Spec: testSpec()}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota Submit err = %v, want ErrQuotaExceeded", err)
	}
	s.Start()
	defer drain(t, s)
	waitState(t, s, job.ID, StateDone)
	if _, err := s.Submit(SubmitRequest{Spec: testSpec()}); err != nil {
		t.Fatalf("Submit after completion: %v, want quota slot freed", err)
	}
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestLifecycleDone(t *testing.T) {
	s := newTestServer(t, Config{})
	s.execute = func(ctx context.Context, e *entry) (*Result, error) {
		e.done.Store(8)
		return &Result{Records: 8, Digest: "abc"}, nil
	}
	s.Start()
	defer drain(t, s)
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, s, job.ID, StateDone)
	if done.Result == nil || done.Result.Digest != "abc" {
		t.Fatalf("Result = %+v, want digest abc", done.Result)
	}
	if done.Progress.Done != 8 {
		t.Errorf("Progress.Done = %d, want 8", done.Progress.Done)
	}
	if done.Attempt != 1 {
		t.Errorf("Attempt = %d, want 1", done.Attempt)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Errorf("StartedAt/FinishedAt not set: %+v", done)
	}
}

func TestRetryThenSucceed(t *testing.T) {
	s := newTestServer(t, Config{DefaultMaxAttempts: 3})
	var attempts int
	var mu sync.Mutex
	s.execute = func(ctx context.Context, e *entry) (*Result, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			return nil, errors.New("transient fault")
		}
		return &Result{Digest: "ok"}, nil
	}
	s.Start()
	defer drain(t, s)
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, s, job.ID, StateDone)
	if done.Attempt != 2 {
		t.Errorf("Attempt = %d, want 2 (one retry)", done.Attempt)
	}
	if done.Error != "" {
		t.Errorf("Error = %q, want cleared after successful retry", done.Error)
	}
	if got := counterValue(t, s, "serv.jobs_retried"); got != 1 {
		t.Errorf("jobs_retried = %v, want 1", got)
	}
}

func TestRetriesExhaustedFails(t *testing.T) {
	s := newTestServer(t, Config{})
	s.execute = func(context.Context, *entry) (*Result, error) {
		return nil, errors.New("permanent fault")
	}
	s.Start()
	defer drain(t, s)
	job, err := s.Submit(SubmitRequest{MaxAttempts: 2, Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	failed := waitState(t, s, job.ID, StateFailed)
	if failed.Attempt != 2 {
		t.Errorf("Attempt = %d, want 2", failed.Attempt)
	}
	if failed.Error != "permanent fault" {
		t.Errorf("Error = %q, want permanent fault", failed.Error)
	}
}

func TestCancelQueued(t *testing.T) {
	s := newTestServer(t, Config{}) // workers never started: stays queued
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := s.Cancel(job.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", got.State)
	}
	// The quota slot is back.
	if len(s.tenantActive) != 0 {
		t.Errorf("tenantActive = %v, want empty", s.tenantActive)
	}
}

func TestCancelRunning(t *testing.T) {
	s := newTestServer(t, Config{})
	s.execute = blockUntilCancel
	s.Start()
	defer drain(t, s)
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateRunning)
	if _, err := s.Cancel(job.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	got := waitState(t, s, job.ID, StateCancelled)
	if got.FinishedAt == nil {
		t.Error("FinishedAt not set on cancelled job")
	}
}

func TestCancelTerminalConflicts(t *testing.T) {
	s := newTestServer(t, Config{})
	s.execute = instantOK
	s.Start()
	defer drain(t, s)
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateDone)
	if _, err := s.Cancel(job.ID); !errors.Is(err, ErrConflict) {
		t.Fatalf("Cancel done job err = %v, want ErrConflict", err)
	}
	if _, err := s.Cancel("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel unknown job err = %v, want ErrNotFound", err)
	}
}

func TestResumeFailedJob(t *testing.T) {
	s := newTestServer(t, Config{})
	var fail = true
	var mu sync.Mutex
	s.execute = func(context.Context, *entry) (*Result, error) {
		mu.Lock()
		f := fail
		mu.Unlock()
		if f {
			return nil, errors.New("boom")
		}
		return &Result{Digest: "recovered"}, nil
	}
	s.Start()
	defer drain(t, s)
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateFailed)

	if _, err := s.Resume("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resume unknown err = %v, want ErrNotFound", err)
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	resumed, err := s.Resume(job.ID)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if resumed.State != StateQueued || resumed.Attempt != 0 {
		t.Errorf("resumed job = state %s attempt %d, want queued/0", resumed.State, resumed.Attempt)
	}
	done := waitState(t, s, job.ID, StateDone)
	if done.Result == nil || done.Result.Digest != "recovered" {
		t.Fatalf("Result = %+v, want digest recovered", done.Result)
	}
	if _, err := s.Resume(job.ID); !errors.Is(err, ErrConflict) {
		t.Fatalf("Resume done job err = %v, want ErrConflict", err)
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	var mu sync.Mutex
	var order []string
	s.execute = func(_ context.Context, e *entry) (*Result, error) {
		mu.Lock()
		order = append(order, e.job.ID)
		mu.Unlock()
		return &Result{}, nil
	}
	// Enqueue before starting the worker so priorities decide the order.
	submit := func(id string, prio int) {
		t.Helper()
		if _, err := s.Submit(SubmitRequest{ID: id, Priority: prio, Spec: testSpec()}); err != nil {
			t.Fatalf("Submit %s: %v", id, err)
		}
	}
	submit("low", 0)
	submit("high_a", 5)
	submit("mid", 2)
	submit("high_b", 5) // same class as high_a: FIFO within it
	s.Start()
	defer drain(t, s)
	for _, id := range []string{"low", "high_a", "mid", "high_b"} {
		waitState(t, s, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high_a", "high_b", "mid", "low"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("execution order = %v, want %v", order, want)
	}
}

func TestDrainPreemptsAndRequeues(t *testing.T) {
	s := newTestServer(t, Config{})
	s.execute = blockUntilCancel
	s.Start()
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateRunning)
	drain(t, s)

	got, err := s.Get(job.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.State != StateQueued {
		t.Errorf("state after drain = %s, want queued (preempted, not failed)", got.State)
	}
	if got.Attempt != 0 {
		t.Errorf("Attempt after drain = %d, want 0 (drain does not consume attempts)", got.Attempt)
	}
	if _, err := s.Submit(SubmitRequest{Spec: testSpec()}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining err = %v, want ErrDraining", err)
	}
	if _, err := s.Resume(job.ID); !errors.Is(err, ErrConflict) {
		// queued is not resumable — and must not be corrupted by the call.
		t.Fatalf("Resume queued err = %v, want ErrConflict", err)
	}
}

func TestRestartRecoversCrashedRunningJob(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Dir: dir})
	job, err := s.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Simulate a crash mid-run: the document says running, the process is
	// gone (no Drain, no transition).
	s.mu.Lock()
	e := s.jobs[job.ID]
	e.job.State = StateRunning
	e.job.Attempt = 1
	if err := s.store.saveJob(&e.job); err != nil {
		t.Fatalf("saveJob: %v", err)
	}
	s.mu.Unlock()

	s2 := newTestServer(t, Config{Dir: dir})
	got, err := s2.Get(job.ID)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if got.State != StateQueued {
		t.Errorf("recovered state = %s, want queued", got.State)
	}
	if got.Attempt != 0 {
		t.Errorf("recovered Attempt = %d, want 0 (crash requeue is free)", got.Attempt)
	}
	// And it executes to completion on the new server.
	s2.execute = instantOK
	s2.Start()
	defer drain(t, s2)
	waitState(t, s2, job.ID, StateDone)
	// Sequence numbering continues past the recovered job.
	next, err := s2.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit on restarted server: %v", err)
	}
	if next.Seq <= got.Seq {
		t.Errorf("next Seq = %d, want > %d", next.Seq, got.Seq)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	s.execute = instantOK
	s.Start()
	defer drain(t, s)

	const submitters, each = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, submitters*each)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, err := s.Submit(SubmitRequest{Tenant: tenant, Spec: testSpec()}); err != nil {
					errs <- err
				}
			}
		}(fmt.Sprintf("t%d", i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Submit: %v", err)
	}
	jobs := s.List("", "")
	if len(jobs) != submitters*each {
		t.Fatalf("List: %d jobs, want %d", len(jobs), submitters*each)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate auto-assigned ID %s", j.ID)
		}
		seen[j.ID] = true
	}
	for _, j := range jobs {
		waitState(t, s, j.ID, StateDone)
	}
}

func TestDrainLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	s := newTestServer(t, Config{Workers: 4})
	s.execute = blockUntilCancel
	s.Start()
	for i := 0; i < 6; i++ { // more jobs than workers: some stay queued
		if _, err := s.Submit(SubmitRequest{Spec: testSpec()}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	drain(t, s)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain (idempotency): %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: %d before, %d after drain; stacks:\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

func TestListFilters(t *testing.T) {
	s := newTestServer(t, Config{})
	for i, tenant := range []string{"alpha", "alpha", "beta"} {
		if _, err := s.Submit(SubmitRequest{ID: fmt.Sprintf("job%d", i), Tenant: tenant, Spec: testSpec()}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if _, err := s.Cancel("job0"); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got := len(s.List("", "")); got != 3 {
		t.Errorf("List all = %d, want 3", got)
	}
	if got := len(s.List(StateQueued, "")); got != 2 {
		t.Errorf("List queued = %d, want 2", got)
	}
	if got := len(s.List("", "alpha")); got != 2 {
		t.Errorf("List alpha = %d, want 2", got)
	}
	if got := len(s.List(StateQueued, "alpha")); got != 1 {
		t.Errorf("List queued+alpha = %d, want 1", got)
	}
	// Submission order.
	all := s.List("", "")
	for i := 1; i < len(all); i++ {
		if all[i-1].Seq >= all[i].Seq {
			t.Errorf("List not in Seq order: %v", all)
		}
	}
}

func TestMetricsMerge(t *testing.T) {
	s := newTestServer(t, Config{})
	s.execute = func(_ context.Context, e *entry) (*Result, error) {
		e.reg.Counter("sim.cells").Add(4)
		return &Result{}, nil
	}
	s.Start()
	defer drain(t, s)
	job, err := s.Submit(SubmitRequest{ID: "metricjob", Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, job.ID, StateDone)

	snap, err := s.Metrics("")
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	var foundServ, foundJob bool
	for _, c := range snap.Counters {
		switch c.Name {
		case "serv.jobs_completed":
			foundServ = c.Value == 1
		case "job.metricjob.sim.cells":
			foundJob = c.Value == 4
		}
	}
	if !foundServ || !foundJob {
		t.Errorf("merged snapshot missing serv/job counters (serv %v, job %v): %+v", foundServ, foundJob, snap.Counters)
	}

	jobSnap, err := s.Metrics("metricjob")
	if err != nil {
		t.Fatalf("Metrics(job): %v", err)
	}
	var unprefixed bool
	for _, c := range jobSnap.Counters {
		if c.Name == "sim.cells" && c.Value == 4 {
			unprefixed = true
		}
	}
	if !unprefixed {
		t.Errorf("job snapshot missing unprefixed sim.cells: %+v", jobSnap.Counters)
	}
	if _, err := s.Metrics("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Metrics(unknown) err = %v, want ErrNotFound", err)
	}
}
