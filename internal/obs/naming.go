package obs

import "regexp"

// NamePattern is the required shape of every metric name: dot-separated
// lowercase snake_case segments with at least one dot, the first segment
// naming the owning subsystem ("abm.heap_pops", "sim.cell_ns"). The
// accuvet metricname analyzer enforces this pattern on every string
// literal reaching a Registry lookup at compile time; TestRegistryNames
// in this package enforces it on dynamically built names at run time.
const NamePattern = `^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`

var nameRE = regexp.MustCompile(NamePattern)

// ValidName reports whether name conforms to NamePattern.
func ValidName(name string) bool { return nameRE.MatchString(name) }
