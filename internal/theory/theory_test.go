package theory

import (
	"errors"
	"math"
	"testing"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/osn"
)

func buildGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if _, err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Freeze()
}

// instWith builds an instance with explicit kinds/params and deterministic
// edges unless edgeProb is provided.
type spec struct {
	n        int
	edges    [][2]int
	cautious map[int]int     // node -> theta
	q        map[int]float64 // reckless acceptance overrides (default 1)
	bf       map[int]float64 // B_f overrides (default 2; cautious default 50)
	bfof     map[int]float64 // B_fof overrides (default 1)
	edgeP    map[[2]int]float64
}

func makeInstance(t *testing.T, s spec) *osn.Instance {
	t.Helper()
	g := buildGraph(t, s.n, s.edges)
	p := osn.Params{
		Kind:       make([]osn.Kind, s.n),
		AcceptProb: make([]float64, s.n),
		Theta:      make([]int, s.n),
		BFriend:    make([]float64, s.n),
		BFof:       make([]float64, s.n),
	}
	for i := 0; i < s.n; i++ {
		p.Kind[i] = osn.Reckless
		p.AcceptProb[i] = 1
		p.BFriend[i] = 2
		p.BFof[i] = 1
	}
	for v, th := range s.cautious {
		p.Kind[v] = osn.Cautious
		p.AcceptProb[v] = 0
		p.Theta[v] = th
		p.BFriend[v] = 50
	}
	for u, q := range s.q {
		p.AcceptProb[u] = q
	}
	for u, b := range s.bf {
		p.BFriend[u] = b
	}
	for u, b := range s.bfof {
		p.BFof[u] = b
	}
	if s.edgeP != nil {
		p.EdgeProb = make([]float64, g.AdjSize())
		for i := range p.EdgeProb {
			p.EdgeProb[i] = 1
		}
		for e, pe := range s.edgeP {
			p.EdgeProb[g.IndexOf(e[0], e[1])] = pe
			p.EdgeProb[g.IndexOf(e[1], e[0])] = pe
		}
	}
	inst, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestEnumerateRealizationsDeterministic(t *testing.T) {
	inst := makeInstance(t, spec{n: 2, edges: [][2]int{{0, 1}}})
	all, err := EnumerateRealizations(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("realizations = %d, want 1 (no random bits)", len(all))
	}
	if all[0].P != 1 {
		t.Errorf("probability = %v", all[0].P)
	}
}

func TestEnumerateRealizationsProbabilities(t *testing.T) {
	inst := makeInstance(t, spec{
		n:     3,
		edges: [][2]int{{0, 1}, {1, 2}},
		q:     map[int]float64{0: 0.5},
		edgeP: map[[2]int]float64{{0, 1}: 0.25},
	})
	all, err := EnumerateRealizations(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 { // 2 coins
		t.Fatalf("realizations = %d, want 4", len(all))
	}
	var sum float64
	for _, wr := range all {
		sum += wr.P
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	// The deterministic edge (1,2) must exist everywhere.
	for _, wr := range all {
		if !wr.R.EdgeExists(1, 2) {
			t.Error("deterministic edge missing in some realization")
		}
	}
}

func TestEnumerateRealizationsTooLarge(t *testing.T) {
	edges := make([][2]int, 0, 20)
	ep := map[[2]int]float64{}
	for i := 0; i < 20; i++ {
		e := [2]int{i, i + 1}
		edges = append(edges, e)
		ep[e] = 0.5
	}
	inst := makeInstance(t, spec{n: 21, edges: edges, edgeP: ep})
	if _, err := EnumerateRealizations(inst); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestDeltaMatchesHandComputation(t *testing.T) {
	// Single reckless user with q=0.5 and no edges: Δ(u|∅) = 0.5·B_f.
	inst := makeInstance(t, spec{n: 1, edges: nil, q: map[int]float64{0: 0.5}})
	all, err := EnumerateRealizations(inst)
	if err != nil {
		t.Fatal(err)
	}
	ref := inst.FixedRealization(nil, nil)
	d, err := Delta(inst, all, ref, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 { // 0.5 · 2
		t.Errorf("Δ = %v, want 1", d)
	}
}

func TestDeltaConditioning(t *testing.T) {
	// Edge (0,1) with p=0.5; befriending 0 reveals it. Conditioned on
	// the edge existing, Δ(1|ω) must use posterior 1, not prior 0.5.
	inst := makeInstance(t, spec{
		n:     2,
		edges: [][2]int{{0, 1}},
		edgeP: map[[2]int]float64{{0, 1}: 0.5},
	})
	all, err := EnumerateRealizations(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the edge exists.
	refExists := inst.FixedRealization(func(u, v int) bool { return true }, nil)
	d, err := Delta(inst, all, refExists, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1 is FOF already: Δ = B_f − B_fof = 1.
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("Δ(1|edge observed) = %v, want 1", d)
	}
	// Reference: the edge is absent.
	refMissing := inst.FixedRealization(func(u, v int) bool { return false }, nil)
	d, err = Delta(inst, all, refMissing, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-12 { // plain B_f, no FOF rebate
		t.Errorf("Δ(1|edge missing) = %v, want 2", d)
	}
}

func TestNonSubmodularWitness(t *testing.T) {
	w, err := NonSubmodularWitness()
	if err != nil {
		t.Fatal(err)
	}
	if w.DeltaEarly != 0 {
		t.Errorf("Δ(v1|∅) = %v, want 0", w.DeltaEarly)
	}
	if math.Abs(w.DeltaLate-49) > 1e-12 { // B_f − B_fof = 50 − 1
		t.Errorf("Δ(v1|ω2) = %v, want 49", w.DeltaLate)
	}
	if w.DeltaLate <= w.DeltaEarly {
		t.Error("witness does not violate adaptive submodularity")
	}
}

func TestCurvatureWitnessUnbounded(t *testing.T) {
	gamma, _, err := CurvatureWitness()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(gamma, 1) {
		t.Errorf("Γ = %v, want +Inf", gamma)
	}
}

func TestBenefitSetClosure(t *testing.T) {
	// Cautious 2 with θ=2, neighbors 0 and 1: f({0,1,2}) must befriend 2
	// via the fixpoint regardless of slice order.
	inst := makeInstance(t, spec{
		n:        3,
		edges:    [][2]int{{0, 2}, {1, 2}},
		cautious: map[int]int{2: 2},
	})
	re := inst.FixedRealization(nil, nil)
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		got, err := BenefitSet(inst, re, order)
		if err != nil {
			t.Fatal(err)
		}
		// friends 0,1,2: 2+2+50; no FOFs left.
		if got != 54 {
			t.Errorf("order %v: f = %v, want 54", order, got)
		}
	}
	// Without both neighbors the cautious user stays out.
	got, err := BenefitSet(inst, re, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 { // friend 0 (2) + FOF 2 (1)
		t.Errorf("f({0,2}) = %v, want 3", got)
	}
}

func TestRASRSubmodularWithoutCautious(t *testing.T) {
	// Observation 1: V_C = ∅ ⇒ λ = 1.
	inst := makeInstance(t, spec{
		n:     4,
		edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}},
		q:     map[int]float64{1: 0.5},
	})
	lambda, err := AdaptiveSubmodularRatio(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lambda != 1 {
		t.Errorf("λ = %v, want 1 for V_C = ∅", lambda)
	}
}

func TestRASRBelowOneWithCautious(t *testing.T) {
	// A cautious user with θ=2 forces λ < 1.
	inst := makeInstance(t, spec{
		n:        4,
		edges:    [][2]int{{0, 3}, {1, 3}, {0, 1}, {1, 2}},
		cautious: map[int]int{3: 2},
	})
	re := inst.FixedRealization(nil, nil)
	lambda, err := RASR(inst, re)
	if err != nil {
		t.Fatal(err)
	}
	if lambda >= 1 || lambda <= 0 {
		t.Errorf("λ_φ = %v, want in (0, 1)", lambda)
	}
}

func TestRASRPositiveUnderLemma1Condition(t *testing.T) {
	// Lemma 1 / Corollary 1: B_f − B_fof > 0 everywhere ⇒ λ > 0.
	inst := makeInstance(t, spec{
		n:        5,
		edges:    [][2]int{{0, 4}, {1, 4}, {2, 4}, {0, 1}, {1, 2}, {2, 3}},
		cautious: map[int]int{4: 3},
	})
	lambda, err := AdaptiveSubmodularRatio(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 {
		t.Errorf("λ = %v, want > 0", lambda)
	}
}

func TestRASRTooLarge(t *testing.T) {
	edges := make([][2]int, 0, 13)
	for i := 0; i < 13; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	inst := makeInstance(t, spec{n: 14, edges: edges})
	if _, err := RASR(inst, inst.FixedRealization(nil, nil)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestLemma4DegreeOne(t *testing.T) {
	// vc(0) — u(1) — w(2); B_fof(vc)=0 so the closed form is exact.
	inst := makeInstance(t, spec{
		n:        3,
		edges:    [][2]int{{0, 1}, {1, 2}},
		cautious: map[int]int{0: 1},
		bfof:     map[int]float64{0: 0},
	})
	lambda, err := Lemma4Lambda(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	// B'(u) = 2 − 1 = 1 (u has neighbor w); λ = 1 / (50 + 1).
	want := 1.0 / 51.0
	if math.Abs(lambda-want) > 1e-12 {
		t.Fatalf("Lemma 4 λ = %v, want %v", lambda, want)
	}
	// The exhaustive RASR over the single deterministic realization must
	// agree exactly in this B_fof(vc)=0 case.
	exact, err := RASR(inst, inst.FixedRealization(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-want) > 1e-12 {
		t.Errorf("exhaustive λ_φ = %v, want %v", exact, want)
	}
}

func TestLemma4IsLowerBoundWithFofBenefit(t *testing.T) {
	// With B_fof(vc) > 0 the paper's numerator omits the FOF benefit of
	// vc gained while befriending u, so the closed form is a (safe)
	// lower bound on the exhaustive ratio.
	inst := makeInstance(t, spec{
		n:        3,
		edges:    [][2]int{{0, 1}, {1, 2}},
		cautious: map[int]int{0: 1},
	})
	lambda, err := Lemma4Lambda(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RASR(inst, inst.FixedRealization(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if lambda > exact+1e-12 {
		t.Errorf("closed form %v exceeds exhaustive %v", lambda, exact)
	}
	if lambda <= 0 {
		t.Errorf("λ = %v, want > 0", lambda)
	}
}

func TestLemma4HighDegree(t *testing.T) {
	// vc(3) with neighbors 0,1,2 and θ=2; B_fof(vc)=0. Each neighbor
	// also has a private extra neighbor so B' = B_f − B_fof = 1.
	inst := makeInstance(t, spec{
		n:        7,
		edges:    [][2]int{{0, 3}, {1, 3}, {2, 3}, {0, 4}, {1, 5}, {2, 6}},
		cautious: map[int]int{3: 2},
		bfof:     map[int]float64{3: 0},
	})
	lambda, err := Lemma4Lambda(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	// (12): cheapest θ-subset sum = 2 → 2/(50+2) = 1/26.
	// (13): B'(vc) = 50 (B_fof(vc)=0 so no FOF rebate... θ>1 means the
	// construction has vc as FOF of S, but its B_fof is 0), single
	// neighbor: 1/(50+1).
	want := math.Min(2.0/52.0, 1.0/51.0)
	if math.Abs(lambda-want) > 1e-12 {
		t.Errorf("λ = %v, want %v", lambda, want)
	}
}

func TestLemma4Errors(t *testing.T) {
	inst := makeInstance(t, spec{
		n:        3,
		edges:    [][2]int{{0, 1}, {1, 2}},
		cautious: map[int]int{0: 1},
	})
	if _, err := Lemma4Lambda(inst, 1); err == nil {
		t.Error("non-cautious node: want error")
	}
	two := makeInstance(t, spec{
		n:        4,
		edges:    [][2]int{{0, 1}, {2, 3}},
		cautious: map[int]int{0: 1, 2: 1},
	})
	if _, err := Lemma4Lambda(two, 0); err == nil {
		t.Error("two cautious users: want error")
	}
}

func TestLemma5UpperBound(t *testing.T) {
	// u(0) shared by cautious 1 and 2 (θ=2 each, other neighbors 3,4).
	inst := makeInstance(t, spec{
		n:        5,
		edges:    [][2]int{{0, 1}, {0, 2}, {3, 1}, {4, 2}},
		cautious: map[int]int{1: 2, 2: 2},
	})
	bound, err := Lemma5UpperBound(inst, 0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// B'(vc) = 50 − 1 = 49 each (θ > 1); bound = 2/(98+2) = 0.02.
	want := 2.0 / 100.0
	if math.Abs(bound-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", bound, want)
	}
	// The exhaustive λ_φ must respect the upper bound.
	exact, err := RASR(inst, inst.FixedRealization(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if exact > bound+1e-9 {
		t.Errorf("exhaustive λ_φ = %v exceeds Lemma 5 bound %v", exact, bound)
	}
}

func TestLemma5Errors(t *testing.T) {
	inst := makeInstance(t, spec{
		n:        3,
		edges:    [][2]int{{0, 1}},
		cautious: map[int]int{1: 1},
	})
	if _, err := Lemma5UpperBound(inst, 0, []int{0}); err == nil {
		t.Error("non-cautious member: want error")
	}
	if _, err := Lemma5UpperBound(inst, 2, []int{1}); err == nil {
		t.Error("non-neighbor: want error")
	}
}

func TestOptimalAtLeastGreedy(t *testing.T) {
	inst := makeInstance(t, spec{
		n:        4,
		edges:    [][2]int{{0, 3}, {1, 3}, {0, 1}, {1, 2}},
		cautious: map[int]int{3: 2},
		q:        map[int]float64{2: 0.5},
	})
	for k := 1; k <= 4; k++ {
		opt, err := OptimalValue(inst, k)
		if err != nil {
			t.Fatal(err)
		}
		gre, err := GreedyValue(inst, k)
		if err != nil {
			t.Fatal(err)
		}
		if gre > opt+1e-9 {
			t.Errorf("k=%d: greedy %v exceeds optimal %v", k, gre, opt)
		}
		if opt <= 0 {
			t.Errorf("k=%d: optimal %v not positive", k, opt)
		}
	}
}

func TestOptimalValueKnownInstance(t *testing.T) {
	// Two disconnected reckless users, B_f 2 each, q=1, k=1: the optimal
	// (and greedy) value is 2.
	inst := makeInstance(t, spec{n: 2})
	opt, err := OptimalValue(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-2) > 1e-12 {
		t.Errorf("opt = %v, want 2", opt)
	}
	gre, err := GreedyValue(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gre-2) > 1e-12 {
		t.Errorf("greedy = %v, want 2", gre)
	}
}

func TestOptimalAdaptivityGain(t *testing.T) {
	// Adaptivity matters: with q=0.5 twins and one follow-up slot, the
	// optimal adaptive value with k=2 exceeds k=1 by the conditional
	// value of the second request.
	inst := makeInstance(t, spec{
		n: 2, q: map[int]float64{0: 0.5, 1: 0.5},
	})
	v1, err := OptimalValue(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := OptimalValue(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-1) > 1e-12 { // 0.5·2
		t.Errorf("v1 = %v", v1)
	}
	if math.Abs(v2-2) > 1e-12 { // both requested: 0.5·2 + 0.5·2
		t.Errorf("v2 = %v", v2)
	}
}

func TestTheorem1Bound(t *testing.T) {
	// Greedy(k) ≥ (1 − e^{−λ})·OPT(k) with λ from exhaustive search
	// (conditions: w_I=0 greedy, B_f − B_fof > 0 everywhere).
	instances := []spec{
		{
			n:        4,
			edges:    [][2]int{{0, 3}, {1, 3}, {0, 1}, {1, 2}},
			cautious: map[int]int{3: 2},
		},
		{
			n:        4,
			edges:    [][2]int{{0, 3}, {1, 3}, {1, 2}},
			cautious: map[int]int{3: 1},
			q:        map[int]float64{0: 0.5},
		},
		{
			n:        5,
			edges:    [][2]int{{0, 4}, {1, 4}, {2, 4}, {0, 1}},
			cautious: map[int]int{4: 2},
			q:        map[int]float64{2: 0.7},
		},
	}
	for i, s := range instances {
		inst := makeInstance(t, s)
		lambda, err := AdaptiveSubmodularRatio(inst)
		if err != nil {
			t.Fatal(err)
		}
		if lambda <= 0 {
			t.Fatalf("instance %d: λ = %v", i, lambda)
		}
		for k := 1; k <= 3; k++ {
			opt, err := OptimalValue(inst, k)
			if err != nil {
				t.Fatal(err)
			}
			gre, err := GreedyValue(inst, k)
			if err != nil {
				t.Fatal(err)
			}
			if gre+1e-9 < Bound(lambda)*opt {
				t.Errorf("instance %d k=%d: greedy %v < (1−e^{−%v})·%v = %v",
					i, k, gre, lambda, opt, Bound(lambda)*opt)
			}
		}
	}
}

func TestBound(t *testing.T) {
	if Bound(0) != 0 {
		t.Error("Bound(0) != 0")
	}
	if math.Abs(Bound(1)-(1-1/math.E)) > 1e-12 {
		t.Errorf("Bound(1) = %v", Bound(1))
	}
	if Bound(0.5) <= 0 || Bound(0.5) >= 1 {
		t.Errorf("Bound(0.5) = %v", Bound(0.5))
	}
}

func TestBudgetValidation(t *testing.T) {
	inst := makeInstance(t, spec{n: 2})
	if _, err := OptimalValue(inst, 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := GreedyValue(inst, -1); err == nil {
		t.Error("k<0: want error")
	}
}

// TestStrongAdaptiveMonotonicity checks Definition 2 operationally: the
// exact expected marginal gain Δ(u|ω) is non-negative for every reachable
// partial realization of several small instances.
func TestStrongAdaptiveMonotonicity(t *testing.T) {
	specs := []spec{
		{
			n:        4,
			edges:    [][2]int{{0, 3}, {1, 3}, {0, 1}, {1, 2}},
			cautious: map[int]int{3: 2},
			q:        map[int]float64{0: 0.5},
		},
		{
			n:     3,
			edges: [][2]int{{0, 1}, {1, 2}},
			q:     map[int]float64{1: 0.5},
			edgeP: map[[2]int]float64{{1, 2}: 0.5},
		},
	}
	for si, s := range specs {
		inst := makeInstance(t, s)
		all, err := EnumerateRealizations(inst)
		if err != nil {
			t.Fatal(err)
		}
		seqs := [][]int{nil, {0}, {1}, {0, 1}, {1, 0}, {0, 1, 2}}
		for _, seq := range seqs {
			ref := inst.FixedRealization(nil, nil)
			requested := map[int]bool{}
			for _, u := range seq {
				requested[u] = true
			}
			for u := 0; u < inst.N(); u++ {
				if requested[u] {
					continue
				}
				d, err := Delta(inst, all, ref, seq, u)
				if err != nil {
					t.Fatal(err)
				}
				if d < -1e-9 {
					t.Errorf("spec %d seq %v: Δ(%d|ω) = %v < 0", si, seq, u, d)
				}
			}
		}
	}
}

// TestGreedyValueMonotoneInBudget: more budget can only help.
func TestGreedyValueMonotoneInBudget(t *testing.T) {
	inst := makeInstance(t, spec{
		n:        4,
		edges:    [][2]int{{0, 3}, {1, 3}, {1, 2}},
		cautious: map[int]int{3: 2},
		q:        map[int]float64{2: 0.5},
	})
	prev := 0.0
	for k := 1; k <= 4; k++ {
		v, err := GreedyValue(inst, k)
		if err != nil {
			t.Fatal(err)
		}
		if v+1e-9 < prev {
			t.Errorf("greedy value decreased at k=%d: %v -> %v", k, prev, v)
		}
		prev = v
	}
}
