package serv

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/accu-sim/accu/internal/sim"
)

// referenceRun executes the spec's protocol directly — no service, no
// checkpoint — and returns the canonical digest and record count a job of
// the same spec must reproduce.
func referenceRun(t *testing.T, spec Spec) (string, int) {
	t.Helper()
	protocol, factories, err := spec.Build(nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dig := sim.NewRecordDigest()
	if err := sim.Run(context.Background(), protocol, factories, dig.Collect); err != nil {
		t.Fatalf("reference sim.Run: %v", err)
	}
	return dig.Sum(), dig.Count()
}

// TestExecuteJobMatchesDirectRun runs one job through the real executor
// and checks the result digest against an uninterrupted in-process run.
func TestExecuteJobMatchesDirectRun(t *testing.T) {
	spec := testSpec()
	wantDigest, wantRecords := referenceRun(t, spec)

	s := newTestServer(t, Config{})
	s.Start()
	defer drain(t, s)
	job, err := s.Submit(SubmitRequest{ID: "direct", Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, s, job.ID, StateDone)
	if done.Result == nil {
		t.Fatal("done job has no Result")
	}
	if done.Result.Digest != wantDigest {
		t.Errorf("digest = %s, want %s", done.Result.Digest, wantDigest)
	}
	if done.Result.Records != wantRecords {
		t.Errorf("records = %d, want %d", done.Result.Records, wantRecords)
	}
	if len(done.Result.Policies) != len(spec.Policies) {
		t.Errorf("policy results = %d, want %d", len(done.Result.Policies), len(spec.Policies))
	}
	for _, pr := range done.Result.Policies {
		if pr.FinalBenefit.Count == 0 {
			t.Errorf("policy %s: empty FinalBenefit aggregate", pr.Policy)
		}
		if pr.FinalBenefitSketch.Count != pr.FinalBenefit.Count {
			t.Errorf("policy %s: sketch count %d != Welford count %d",
				pr.Policy, pr.FinalBenefitSketch.Count, pr.FinalBenefit.Count)
		}
		if pr.CautiousFriendsSketch.Count != pr.CautiousFriends.Count {
			t.Errorf("policy %s: cautious sketch count %d != Welford count %d",
				pr.Policy, pr.CautiousFriendsSketch.Count, pr.CautiousFriends.Count)
		}
	}
}

// TestCancelResumeBitIdentical interrupts a real run mid-grid with a
// client cancel, resumes it, and checks the finished job's digest is
// bit-identical to an uninterrupted run: the checkpoint journal plus the
// deterministic per-cell seeding make the interruption invisible.
func TestCancelResumeBitIdentical(t *testing.T) {
	spec := testSpec()
	spec.Networks = 2
	spec.Runs = 20 // 80 records: wide enough to cancel mid-grid reliably
	wantDigest, wantRecords := referenceRun(t, spec)

	s := newTestServer(t, Config{})
	// First execution: run the real executor, cancelling from the side
	// once a few records are durable. The post-Resume execution also has
	// Attempt == 1 (Resume resets the budget), so a Once gates the watcher.
	interrupted := make(chan struct{})
	var once sync.Once
	s.execute = func(ctx context.Context, e *entry) (*Result, error) {
		once.Do(func() {
			go func() {
				defer close(interrupted)
				for e.done.Load() < 3 {
					time.Sleep(time.Millisecond)
				}
				if _, err := s.Cancel(e.job.ID); err != nil {
					t.Errorf("mid-run Cancel: %v", err)
				}
			}()
		})
		return s.executeJob(ctx, e)
	}
	s.Start()
	defer drain(t, s)

	job, err := s.Submit(SubmitRequest{ID: "resumable", Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cancelled := waitState(t, s, job.ID, StateCancelled)
	<-interrupted
	if cancelled.Progress.Done == 0 {
		t.Fatal("cancelled with zero records: interruption did not land mid-grid")
	}
	if cancelled.Progress.Done >= int64(wantRecords) {
		t.Fatalf("cancelled after %d/%d records: interruption landed too late", cancelled.Progress.Done, wantRecords)
	}
	if !s.store.checkpointExists(job.ID) {
		t.Fatal("no checkpoint journal after cancelled run")
	}

	if _, err := s.Resume(job.ID); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	done := waitState(t, s, job.ID, StateDone)
	if done.Result == nil {
		t.Fatal("resumed job has no Result")
	}
	if done.Result.Digest != wantDigest {
		t.Errorf("resumed digest = %s, want %s (bit-identical to uninterrupted run)", done.Result.Digest, wantDigest)
	}
	if done.Result.Records != wantRecords {
		t.Errorf("resumed records = %d, want %d", done.Result.Records, wantRecords)
	}
	if done.Progress.Resumed == 0 {
		t.Error("Progress.Resumed = 0, want the checkpointed cells of attempt 1")
	}
	if done.Progress.Done+done.Progress.Resumed != int64(wantRecords) {
		t.Errorf("Done %d + Resumed %d != %d", done.Progress.Done, done.Progress.Resumed, wantRecords)
	}
}

// TestRestartResumeBitIdentical simulates the crash path: the process
// "dies" with a job half done (running state persisted, no clean
// transition), a new server over the same directory recovers it, and the
// finished digest still matches the uninterrupted reference.
func TestRestartResumeBitIdentical(t *testing.T) {
	spec := testSpec()
	spec.Networks = 2
	spec.Runs = 20
	wantDigest, wantRecords := referenceRun(t, spec)

	dir := t.TempDir()
	s1 := newTestServer(t, Config{Dir: dir})
	// Run attempt 1 with a context we abandon mid-grid, then persist the
	// running state as a crash would leave it.
	crashed := make(chan struct{})
	s1.execute = func(ctx context.Context, e *entry) (*Result, error) {
		runCtx, stop := context.WithCancel(ctx)
		go func() {
			for e.done.Load() < 3 {
				time.Sleep(time.Millisecond)
			}
			stop()
		}()
		res, err := s1.executeJob(runCtx, e)
		stop()
		close(crashed)
		return res, err
	}
	s1.Start()
	job, err := s1.Submit(SubmitRequest{ID: "crashjob", Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-crashed
	waitState(t, s1, job.ID, StateFailed) // context cancel with no cause = execution error
	// Forge the crash: rewrite the document as if the process died while
	// running, then abandon s1 without draining it.
	s1.mu.Lock()
	e := s1.jobs[job.ID]
	e.job.State = StateRunning
	e.job.Attempt = 1
	e.job.Error = ""
	if err := s1.store.saveJob(&e.job); err != nil {
		t.Fatalf("saveJob: %v", err)
	}
	s1.mu.Unlock()
	drain(t, s1)

	s2 := newTestServer(t, Config{Dir: dir})
	recovered, err := s2.Get(job.ID)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if recovered.State != StateQueued {
		t.Fatalf("recovered state = %s, want queued", recovered.State)
	}
	s2.Start()
	defer drain(t, s2)
	done := waitState(t, s2, job.ID, StateDone)
	if done.Result == nil {
		t.Fatal("recovered job has no Result")
	}
	if done.Result.Digest != wantDigest {
		t.Errorf("post-restart digest = %s, want %s", done.Result.Digest, wantDigest)
	}
	if done.Result.Records != wantRecords {
		t.Errorf("post-restart records = %d, want %d", done.Result.Records, wantRecords)
	}
	if done.Progress.Resumed == 0 {
		t.Error("Progress.Resumed = 0, want checkpointed cells from before the crash")
	}
}
