package serv

import (
	"sync/atomic"
	"time"

	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/stats"
)

// State is a job's lifecycle state. Transitions:
//
//	queued ──claim──▶ running ──▶ done
//	  ▲                  │  ├──▶ failed     (attempts exhausted)
//	  │                  │  ├──▶ cancelled  (client cancel)
//	  ├──retry───────────┘  │
//	  ├──resume (admin)─────┘               (failed/cancelled → queued)
//	  └──drain/crash: running → queued      (resume from checkpoint)
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether no further transitions happen without an
// explicit admin resume.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress is the record-level completion of a job's Monte-Carlo grid.
// Done counts records delivered by the current (or last) run, Resumed the
// records that were already durable in the job's checkpoint when that run
// started; Done + Resumed out of Total is grid-wide completion.
//
//accu:wire
type Progress struct {
	Done    int64 `json:"done"`
	Resumed int64 `json:"resumed"`
	Total   int64 `json:"total"`
}

// PolicyResult is one policy's aggregated outcome over the grid. The
// sketch snapshots carry the p50/p90/p99 quantiles; unlike the Welford
// fields (whose merges can differ in the last float bits depending on
// fold order), they serialize byte-identically for any merge order or
// partition of the same record set.
//
//accu:wire
type PolicyResult struct {
	Policy                string                `json:"policy"`
	FinalBenefit          stats.WelfordSnapshot `json:"finalBenefit"`
	CautiousFriends       stats.WelfordSnapshot `json:"cautiousFriends"`
	FinalBenefitSketch    stats.SketchSnapshot  `json:"finalBenefitSketch"`
	CautiousFriendsSketch stats.SketchSnapshot  `json:"cautiousFriendsSketch"`
}

// Result is a finished job's payload: per-policy statistics over every
// record of the grid (including checkpointed cells replayed on resume)
// and the canonical record-set digest, which is bit-identical to an
// uninterrupted run of the same Spec at any worker count, interruption
// point or service restart.
//
//accu:wire
type Result struct {
	// Records is the number of (policy, network, run) records aggregated.
	Records int `json:"records"`
	// Digest is the order-insensitive SHA-256 over the canonical record
	// set (see sim.RecordDigest).
	Digest string `json:"digest"`
	// FailedCells counts cells abandoned under ContinueOnError; Warning
	// carries their joined message. Both are zero/empty on a clean grid.
	FailedCells int            `json:"failedCells,omitempty"`
	Warning     string         `json:"warning,omitempty"`
	Policies    []PolicyResult `json:"policies"`
}

// Job is the persisted job document: what the HTTP API returns and what
// the store journals to disk on every state transition. The per-record
// progress of a running job lives in the cell checkpoint (durable) and
// in-memory atomics (live view), not here.
//
//accu:wire
type Job struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	// Seq preserves submission order across restarts: the queue pops by
	// (Priority desc, Seq asc).
	Seq  int64 `json:"seq"`
	Spec Spec  `json:"spec"`

	State State `json:"state"`
	// Attempt counts claims so far; MaxAttempts bounds them (a failed
	// job with Attempt < MaxAttempts is requeued automatically). Drain
	// and crash requeues do not consume attempts.
	Attempt     int    `json:"attempt"`
	MaxAttempts int    `json:"maxAttempts"`
	Error       string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`

	Progress Progress `json:"progress"`
	Result   *Result  `json:"result,omitempty"`
}

// entry is the in-memory wrapper around a job document: the queue/heap
// bookkeeping, the live progress atomics, the cancellation hook of a
// running execution, the job-scoped metrics registry and the SSE hub.
// The document and bookkeeping fields are guarded by the server mutex;
// the atomics are written by the job's runner goroutine and read by any
// HTTP handler.
type entry struct {
	job Job

	heapIndex int // position in the queued heap; -1 when not queued

	// cancel aborts the running execution with a cause distinguishing
	// client cancels from drain requeues; nil unless running.
	cancel func(cause error)

	done    atomic.Int64
	resumed atomic.Int64

	// reg is the job-scoped metrics registry, created at first claim and
	// kept after the job finishes so /metrics can still report it.
	reg *obs.Registry

	hub *hub
}
