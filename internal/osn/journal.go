package osn

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Journal records an attack as the sequence of requests it sent — enough,
// together with the realization, to replay the attack deterministically.
// Journals let experiment runs be audited after the fact and make attack
// traces portable across processes.
type Journal struct {
	// Users holds the request targets in send order.
	Users []int
	// BatchSizes optionally marks batch boundaries: the attack sent
	// BatchSizes[0] requests, then BatchSizes[1], ... Summing to
	// len(Users). nil means one request at a time.
	BatchSizes []int
}

// ErrJournalShape is returned when a journal's batch sizes do not match
// its user list.
var ErrJournalShape = errors.New("osn: journal batch sizes do not sum to the user count")

// Validate checks internal consistency.
func (j *Journal) Validate() error {
	if j.BatchSizes == nil {
		return nil
	}
	total := 0
	for _, b := range j.BatchSizes {
		if b <= 0 {
			return fmt.Errorf("%w: batch size %d", ErrJournalShape, b)
		}
		total += b
	}
	if total != len(j.Users) {
		return fmt.Errorf("%w: %d vs %d users", ErrJournalShape, total, len(j.Users))
	}
	return nil
}

// Record appends a single request.
func (j *Journal) Record(u int) {
	j.Users = append(j.Users, u)
	if j.BatchSizes != nil {
		j.BatchSizes = append(j.BatchSizes, 1)
	}
}

// RecordBatch appends a batch of requests.
func (j *Journal) RecordBatch(users []int) {
	if j.BatchSizes == nil {
		// Promote earlier singles to explicit batches.
		j.BatchSizes = make([]int, len(j.Users))
		for i := range j.BatchSizes {
			j.BatchSizes[i] = 1
		}
	}
	j.Users = append(j.Users, users...)
	j.BatchSizes = append(j.BatchSizes, len(users))
}

// Replay re-executes the journal against a realization and returns the
// final state. Replaying the journal of an attack against the same
// realization reproduces its outcomes exactly.
func (j *Journal) Replay(re *Realization) (*State, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	st := NewState(re)
	if j.BatchSizes == nil {
		for _, u := range j.Users {
			if _, err := st.Request(u); err != nil {
				return nil, fmt.Errorf("osn: replay: %w", err)
			}
		}
		return st, nil
	}
	i := 0
	for _, b := range j.BatchSizes {
		if _, err := st.RequestBatch(j.Users[i : i+b]); err != nil {
			return nil, fmt.Errorf("osn: replay batch: %w", err)
		}
		i += b
	}
	return st, nil
}

// WriteTo serializes the journal as plain text: one line per batch, users
// space-separated. It implements io.WriterTo.
func (j *Journal) WriteTo(w io.Writer) (int64, error) {
	if err := j.Validate(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	var written int64
	writeBatch := func(users []int) error {
		parts := make([]string, len(users))
		for i, u := range users {
			parts[i] = strconv.Itoa(u)
		}
		n, err := bw.WriteString(strings.Join(parts, " ") + "\n")
		written += int64(n)
		return err
	}
	if j.BatchSizes == nil {
		for _, u := range j.Users {
			if err := writeBatch([]int{u}); err != nil {
				return written, fmt.Errorf("osn: write journal: %w", err)
			}
		}
	} else {
		i := 0
		for _, b := range j.BatchSizes {
			if err := writeBatch(j.Users[i : i+b]); err != nil {
				return written, fmt.Errorf("osn: write journal: %w", err)
			}
			i += b
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("osn: flush journal: %w", err)
	}
	return written, nil
}

// ReadJournal parses the plain-text journal format produced by WriteTo.
func ReadJournal(r io.Reader) (*Journal, error) {
	j := &Journal{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	var batches [][]int
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		batch := make([]int, 0, len(fields))
		for _, f := range fields {
			u, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("osn: journal line %d: %w", lineNo, err)
			}
			batch = append(batch, u)
		}
		batches = append(batches, batch)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("osn: read journal: %w", err)
	}
	allSingles := true
	for _, b := range batches {
		if len(b) != 1 {
			allSingles = false
			break
		}
	}
	for _, b := range batches {
		if allSingles {
			j.Users = append(j.Users, b[0])
		} else {
			j.RecordBatch(b)
		}
	}
	return j, nil
}
