package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysis.ErrDrop(), analysistest.Fixture{
		Dir:        "testdata/src/errdrop_sim",
		ImportPath: "example.test/internal/sim",
	})
}
