package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	ForTest    string // import path of the package under test, for test variants
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns with the go command, parses and
// type-checks every matched package from source, and returns them in the
// order the go command reported. Imports — including in-module imports
// and the standard library — are resolved through compiler export data
// produced by `go list -export`, so loading is fully offline and shares
// the build cache.
//
// Loading mirrors the go vet unit shape exactly: each package is listed
// with -test and type-checked as one merged unit (production files plus
// in-package test files), then only the production files are analyzed.
// This is what keeps standalone accuvet and `go vet -vettool` verdicts
// identical — a production declaration that only type-checks because a
// test file completes it is seen the same way by both drivers, and each
// package yields exactly one package under analysis (no duplicate
// findings from test variants). Test-binary mains (".test") and external
// _test packages are skipped, as vet units analyze them to nothing.
//
// dir is the working directory for pattern resolution (any directory
// inside the module); pass "" for the current directory.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}

	// Export-data index over every listed package and dependency. Test
	// variants ("pkg [pkg.test]") index under their variant key and never
	// collide with the plain compilation import resolution uses.
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	// In-package test variants, keyed by the package under test: their
	// GoFiles are the merged production + in-package-test unit. ForTest
	// alone does not identify them — every dependency recompiled for the
	// test binary carries it too ("dep [pkg.test]" with ForTest=pkg) —
	// so require the variant of the package itself: "pkg [pkg.test]".
	variants := make(map[string]listEntry, len(entries))
	for _, e := range entries {
		if e.ForTest != "" && strings.HasPrefix(e.ImportPath, e.ForTest+" [") {
			variants[e.ForTest] = e
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || e.ForTest != "" || strings.HasSuffix(e.ImportPath, ".test") {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.CgoFiles) > 0 {
			// Cgo packages cannot be type-checked from source without the
			// generated files; this module has none, so refuse loudly
			// rather than silently skipping.
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", e.ImportPath)
		}
		if v, ok := variants[e.ImportPath]; ok {
			e.GoFiles = v.GoFiles
		}
		pkg, err := checkPackage(fset, imp, e)
		if err != nil {
			return nil, err
		}
		// Analyzers see only the production files; the test files were
		// needed for type-checking the merged unit (same contract as
		// VetUnit).
		var prod []*ast.File
		for _, f := range pkg.Files {
			if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
				prod = append(prod, f)
			}
		}
		pkg.Files = prod
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportData resolves compiler export-data files for the named packages
// and their transitive dependencies via `go list -deps -export`. The
// fixture harness uses it to type-check testdata packages against the
// real standard library without network access.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	entries, err := goList(dir, false, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer that resolves packages through
// compiler export-data files, keyed by package path.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// goList runs `go list -deps -export -json` over the patterns, with
// -test when includeTests is set.
func goList(dir string, includeTests bool, patterns []string) ([]listEntry, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,ForTest,GoFiles,CgoFiles,Standard,DepOnly,Incomplete,Error",
	}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return TypeCheck(fset, imp, e.ImportPath, files)
}

// TypeCheck type-checks a parsed package under the given importer. It is
// the common entry point for the loader, the unitchecker driver and the
// test fixture harness.
func TypeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	dir := ""
	if len(files) > 0 {
		dir = filepath.Dir(fset.Position(files[0].Pos()).Filename)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
