package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// ChanLeak returns the blocked-sender goroutine-leak analyzer: a
// goroutine that sends on an unbuffered channel leaks forever when the
// spawning function can reach its exit without receiving — the classic
// timed-handoff bug, where the timeout arm of a select returns early and
// the worker goroutine blocks on send for the life of the process.
//
// The check is deliberately narrow so every report is actionable:
//
//   - Only channels made locally with `make(chan T)` (unbuffered) are
//     tracked. A buffer of one is the sanctioned fix for the handoff
//     shape — the sender completes regardless (sim.go's timed-attempt
//     goroutine) — so buffered channels are exempt by construction.
//   - A channel that escapes the function — passed to a call, returned,
//     stored, sent over another channel, or aliased — is exempt: the
//     receiver may live anywhere. So is a channel some goroutine
//     receives from (worker pools consume in the workers; cross-
//     goroutine ordering is out of scope).
//   - A send inside a select with another ready arm (a second case or a
//     default) is guarded: the sender can bail, no leak.
//
// What remains: a `go` statement whose function literal sends
// unconditionally on the tracked channel. That spawn generates a
// pending-send fact in the spawner's CFG; a receive (`<-ch`, `range
// ch`, a select receive case) kills it on the paths through it. A fact
// that survives to function exit is a path the spawner completes
// without ever receiving — reported at the `go` statement.
//
// Intentional fire-and-forget sends are the audited exception:
// //accu:allow chanleak -- <why>.
func ChanLeak() *Analyzer {
	a := &Analyzer{
		Name: "chanleak",
		Doc: "flag goroutines that can block forever sending on an unbuffered " +
			"channel the spawning function does not receive from on every path",
	}
	a.Run = func(pass *Pass) error {
		funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
			checkChanLeak(pass, body)
		})
		return nil
	}
	return a
}

// pendingSend marks "a goroutine spawned at pos is blocked sending on ch
// until this function receives".
type pendingSend struct{ ch types.Object }

func checkChanLeak(pass *Pass, body *ast.BlockStmt) {
	chans := localUnbufferedChans(pass, body)
	if len(chans) == 0 {
		return
	}
	pruneEscapedChans(pass, body, chans)
	if len(chans) == 0 {
		return
	}

	cfg := NewCFG(body)
	transfer := func(n ast.Node, facts Facts) {
		walkBlockNode(n, false, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					for ch := range chans {
						if hasUnguardedSend(pass, lit.Body, ch) {
							if _, have := facts[pendingSend{ch}]; !have {
								facts[pendingSend{ch}] = m.Pos()
							}
						}
					}
				}
				return false
			case *ast.UnaryExpr:
				// <-ch receives: one pending sender completes.
				if obj := recvChanObj(pass, m); obj != nil {
					delete(facts, pendingSend{obj})
				}
			case *ast.RangeStmt:
				if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						delete(facts, pendingSend{obj})
					}
				}
			}
			return true
		})
	}
	_, exit := cfg.ForwardMay(transfer)
	// Deterministic report order: sort surviving facts by position.
	type leak struct {
		ch  types.Object
		pos token.Pos
	}
	var leaks []leak
	for k, p := range exit {
		if f, ok := k.(pendingSend); ok {
			leaks = append(leaks, leak{f.ch, p})
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		pass.Reportf(l.pos,
			"goroutine sends on unbuffered channel %s but the spawning function can return without receiving; the sender blocks forever — buffer the channel, guard the send with a select, or receive on every path",
			l.ch.Name())
	}
}

// localUnbufferedChans collects channels defined in this body (outside
// nested function literals) via `make(chan T)` with no or zero buffer.
func localUnbufferedChans(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	chans := make(map[types.Object]bool)
	walkBlockNode(body, false, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			return true
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "make" || pass.Info.Uses[fid] != types.Universe.Lookup("make") {
			return true
		}
		unbuffered := len(call.Args) == 1
		if len(call.Args) == 2 {
			if tv, ok := pass.Info.Types[call.Args[1]]; ok && tv.Value != nil {
				unbuffered = constant.Sign(tv.Value) == 0
			}
		}
		if unbuffered {
			chans[obj] = true
		}
		return true
	})
	return chans
}

// pruneEscapedChans drops channels whose value leaves the analyzed
// function's hands — used as a call argument, returned, stored, sent,
// aliased — or that some goroutine receives from (the consumer lives in
// another goroutine, so spawner-local path reasoning cannot prove a
// leak).
func pruneEscapedChans(pass *Pass, body *ast.BlockStmt, chans map[types.Object]bool) {
	drop := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				delete(chans, obj)
			}
		}
	}
	var inGo int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					for _, arg := range m.Call.Args {
						drop(arg)
					}
					inGo++
					walk(lit.Body)
					inGo--
					return false
				}
				for _, arg := range m.Call.Args {
					drop(arg)
				}
				drop(m.Call.Fun)
				return false
			case *ast.CallExpr:
				// Channel as ordinary call argument escapes; close(ch) and
				// make's type argument do not.
				if fid, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
					if obj := pass.Info.Uses[fid]; obj == types.Universe.Lookup("close") ||
						obj == types.Universe.Lookup("make") ||
						obj == types.Universe.Lookup("len") || obj == types.Universe.Lookup("cap") {
						return true
					}
				}
				for _, arg := range m.Args {
					drop(arg)
				}
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					drop(r)
				}
			case *ast.SendStmt:
				drop(m.Value)
			case *ast.AssignStmt:
				// Aliasing (x := ch) or storing (s.ch = ch) escapes; the
				// defining make assignment does not (rhs is the call).
				for _, r := range m.Rhs {
					drop(r)
				}
			case *ast.UnaryExpr:
				if m.Op == token.AND {
					drop(m.X)
				}
				if inGo > 0 {
					if obj := recvChanObj(pass, m); obj != nil {
						delete(chans, obj)
					}
				}
			case *ast.RangeStmt:
				if inGo > 0 {
					drop(m.X)
				}
			case *ast.CompositeLit:
				for _, el := range m.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					drop(el)
				}
			}
			return true
		})
	}
	walk(body)
}

// recvChanObj returns the channel object when expr is a receive from a
// plain identifier (<-ch), else nil.
func recvChanObj(pass *Pass, expr *ast.UnaryExpr) types.Object {
	if expr.Op != token.ARROW {
		return nil
	}
	if id, ok := ast.Unparen(expr.X).(*ast.Ident); ok {
		return pass.Info.Uses[id]
	}
	return nil
}

// hasUnguardedSend reports whether the goroutine body sends on ch
// outside any select that offers the sender another way out (a second
// case or a default).
func hasUnguardedSend(pass *Pass, body *ast.BlockStmt, ch types.Object) bool {
	found := false
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if found {
			return false
		}
		if send, ok := n.(*ast.SendStmt); ok {
			if id, ok := ast.Unparen(send.Chan).(*ast.Ident); ok && pass.Info.Uses[id] == ch {
				if !sendGuarded(stack) {
					found = true
					return false
				}
			}
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(body, visit)
	return found
}

// sendGuarded reports whether the innermost enclosing select of the
// send (if any) has an alternative arm.
func sendGuarded(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return len(sel.Body.List) >= 2
		}
	}
	return false
}
