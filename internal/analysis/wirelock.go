package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The wire-schema lockfile is wiretag's second line of defense: the
// analyzer catches missing/duplicate json tags at the declaration, the
// lockfile catches everything the type checker cannot — a field rename,
// a reorder, a type change, a struct dropped from the wire — by turning
// the aggregate schema of every //accu:wire struct into a committed
// artifact. `accuvet -wire-lock` diffs the tree against it; any drift is
// a finding until `-write-wire-lock` re-snapshots it under review.

const wireLockVersion = 1

// WireLock is the committed snapshot of all wire-struct schemas.
type WireLock struct {
	Version int          `json:"version"`
	Schemas []WireSchema `json:"schemas"`
}

// NewWireLock sorts schemas into canonical order (package, then name)
// and wraps them in the current lockfile version.
func NewWireLock(schemas []WireSchema) *WireLock {
	sorted := append([]WireSchema(nil), schemas...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Package != sorted[j].Package {
			return sorted[i].Package < sorted[j].Package
		}
		return sorted[i].Name < sorted[j].Name
	})
	return &WireLock{Version: wireLockVersion, Schemas: sorted}
}

// LoadWireLock reads a lockfile. Unlike baselines, a missing lockfile is
// an error: -wire-lock without a committed snapshot would vacuously
// pass, which is exactly the silent drift the check exists to prevent.
func LoadWireLock(path string) (*WireLock, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l WireLock
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("wire lock %s: %w", path, err)
	}
	if l.Version != wireLockVersion {
		return nil, fmt.Errorf("wire lock %s: unsupported version %d (want %d)", path, l.Version, wireLockVersion)
	}
	return &l, nil
}

// Write renders the lockfile as stable, indented JSON for committing.
func (l *WireLock) Write(w io.Writer) error {
	if l.Schemas == nil {
		l.Schemas = []WireSchema{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(l)
}

// Diff compares the committed lock (l) against the schemas of the
// current tree and returns one human-readable line per drift. Empty
// means the wire format is unchanged.
func (l *WireLock) Diff(current []WireSchema) []string {
	cur := NewWireLock(current)
	old := make(map[string]WireSchema, len(l.Schemas))
	for _, s := range l.Schemas {
		old[s.Package+"."+s.Name] = s
	}
	seen := make(map[string]bool, len(cur.Schemas))
	var drift []string
	for _, s := range cur.Schemas {
		key := s.Package + "." + s.Name
		seen[key] = true
		o, ok := old[key]
		if !ok {
			drift = append(drift, fmt.Sprintf("wire struct %s is new; commit it with -write-wire-lock", key))
			continue
		}
		drift = append(drift, diffWireStruct(key, o, s)...)
	}
	for _, s := range l.Schemas {
		key := s.Package + "." + s.Name
		if !seen[key] {
			drift = append(drift, fmt.Sprintf("wire struct %s was removed or lost its //accu:wire marker; old decoders still expect it", key))
		}
	}
	return drift
}

// diffWireStruct reports field-level drift. Order matters: unkeyed
// literals are banned by the analyzer, but journal replay and mixed-
// version clusters still see reordering as a semantic change worth a
// review, so it is reported rather than normalized away.
func diffWireStruct(key string, old, cur WireSchema) []string {
	var drift []string
	n := len(old.Fields)
	if len(cur.Fields) < n {
		n = len(cur.Fields)
	}
	for i := 0; i < n; i++ {
		o, c := old.Fields[i], cur.Fields[i]
		switch {
		case o == c:
		case o.JSON != c.JSON && o.Name == c.Name:
			drift = append(drift, fmt.Sprintf("%s.%s: wire name changed %q -> %q; old payloads no longer decode into it", key, c.Name, o.JSON, c.JSON))
		case o.Type != c.Type && o.Name == c.Name && o.JSON == c.JSON:
			drift = append(drift, fmt.Sprintf("%s.%s: type changed %s -> %s", key, c.Name, o.Type, c.Type))
		default:
			drift = append(drift, fmt.Sprintf("%s: field %d changed %s(json:%q %s) -> %s(json:%q %s)", key, i, o.Name, o.JSON, o.Type, c.Name, c.JSON, c.Type))
		}
	}
	for i := n; i < len(old.Fields); i++ {
		o := old.Fields[i]
		drift = append(drift, fmt.Sprintf("%s: field %s(json:%q) was removed; old payloads carrying it now silently drop data", key, o.Name, o.JSON))
	}
	for i := n; i < len(cur.Fields); i++ {
		c := cur.Fields[i]
		drift = append(drift, fmt.Sprintf("%s: field %s(json:%q) is new; commit it with -write-wire-lock", key, c.Name, c.JSON))
	}
	return drift
}
