package stats

import (
	"math"
	"testing"
)

// FuzzDecodeBlock drives the columnar block decoder with arbitrary
// payloads. The decoder sits behind a CRC frame, but structural
// corruption inside a valid frame must still fail cleanly — never
// panic, never over-allocate — and every payload it accepts must
// round-trip stably through encodeBlock.
func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	rows := []StoreRecord{
		{Policy: "abm", Network: 0, Run: 0, Benefit: 0.25, CautiousFriends: 10},
		{Policy: "abm", Network: 0, Run: 1, Benefit: 0.5, CautiousFriends: 10},
		{Policy: "random", Network: 3, Run: 7, Benefit: math.Inf(1), CautiousFriends: 0},
	}
	f.Add(encodeBlock(rows))
	f.Add(encodeBlock(nil))
	f.Add(encodeBlock(rows[:1]))
	f.Fuzz(func(t *testing.T, payload []byte) {
		decoded, err := decodeBlock(payload)
		if err != nil {
			return // rejecting corruption loudly is the contract
		}
		again, err := decodeBlock(encodeBlock(decoded))
		if err != nil {
			t.Fatalf("accepted payload does not re-decode: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round trip changed row count: %d -> %d", len(decoded), len(again))
		}
		for i := range decoded {
			a, b := decoded[i], again[i]
			// Compare Benefit by bit pattern so NaN payloads count as equal.
			if a.Policy != b.Policy || a.Network != b.Network || a.Run != b.Run ||
				a.CautiousFriends != b.CautiousFriends ||
				math.Float64bits(a.Benefit) != math.Float64bits(b.Benefit) {
				t.Fatalf("round trip changed row %d: %+v -> %+v", i, a, b)
			}
		}
	})
}
