package exp

import (
	"context"
	"fmt"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/stats"
)

// fig45Weights is the w_I grid of Fig. 4/5 (w_D = 1 − w_I).
var fig45Weights = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}

// fig45Dataset picks the sweep dataset: the paper uses Twitter; fall back
// to the first configured dataset if Twitter is not in the roster.
func fig45Dataset(cfg Config) string {
	for _, d := range cfg.Datasets {
		if d == "twitter" {
			return d
		}
	}
	return cfg.Datasets[0]
}

// Fig4 reproduces Fig. 4: total benefit and number of cautious friends
// after k requests on Twitter, varying w_I with w_D = 1 − w_I.
func Fig4(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	dataset := fig45Dataset(cfg)
	g, _, err := cfg.generator(dataset)
	if err != nil {
		return nil, err
	}

	xs := fig45Weights
	benefit := stats.NewSeries("benefit", xs)
	cautious := stats.NewSeries("cautious-friends", xs)

	factories := make([]sim.PolicyFactory, 0, len(xs))
	for _, wi := range xs {
		w := core.Weights{WD: 1 - wi, WI: wi}
		f, err := sim.ABMFactory(w, cfg.abmOptions()...)
		if err != nil {
			return nil, err
		}
		f.Name = fmt.Sprintf("wI=%.1f", wi)
		factories = append(factories, f)
	}
	index := make(map[string]int, len(factories))
	for i, f := range factories {
		index[f.Name] = i
	}

	protocol := cfg.protocol(g, cfg.setup(), cfg.Seed.Split("fig4-"+dataset))
	err = cfg.run(ctx, "fig4-"+dataset, protocol, factories, func(rec sim.Record) {
		i := index[rec.Policy]
		benefit.Add(i, rec.Result.Benefit)
		cautious.Add(i, float64(rec.Result.CautiousFriends))
	})
	if err != nil {
		return nil, fmt.Errorf("exp: fig4 %s: %w", dataset, err)
	}

	var notes []string
	bm := benefit.Means()
	best := 0
	for i := range bm {
		if bm[i] > bm[best] {
			best = i
		}
	}
	notes = append(notes, fmt.Sprintf("%s: benefit peaks at wI=%.1f", dataset, xs[best]))
	cm := cautious.Means()
	monotone := true
	for i := 1; i < len(cm); i++ {
		if cm[i] < cm[i-1]-1e-9 {
			monotone = false
			break
		}
	}
	notes = append(notes, fmt.Sprintf("%s: cautious friends monotone in wI: %v", dataset, monotone))

	tab, err := stats.SeriesTable(dataset, "wI", []*stats.Series{benefit, cautious})
	if err != nil {
		return nil, fmt.Errorf("exp: fig4 %s: %w", dataset, err)
	}
	tables := []stats.Table{tab}
	return newReport("fig4", fmt.Sprintf("Benefit and cautious friends vs w_I (%s)", dataset), tables, notes), nil
}

// Fig5 reproduces Fig. 5: the fraction of runs in which request index X
// targets a cautious user, for several w_I settings (bucketed in ten
// request-index groups).
func Fig5(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	dataset := fig45Dataset(cfg)
	g, _, err := cfg.generator(dataset)
	if err != nil {
		return nil, err
	}

	cps := checkpoints(cfg.K)
	xs := make([]float64, len(cps))
	for i, c := range cps {
		xs[i] = float64(c)
	}

	sweep := []float64{0.1, 0.3, 0.5}
	factories := make([]sim.PolicyFactory, 0, len(sweep))
	series := make(map[string]*stats.Series, len(sweep))
	ordered := make([]*stats.Series, 0, len(sweep))
	for _, wi := range sweep {
		f, err := sim.ABMFactory(core.Weights{WD: 1 - wi, WI: wi}, cfg.abmOptions()...)
		if err != nil {
			return nil, err
		}
		f.Name = fmt.Sprintf("wI=%.1f", wi)
		factories = append(factories, f)
		s := stats.NewSeries(f.Name, xs)
		series[f.Name] = s
		ordered = append(ordered, s)
	}

	protocol := cfg.protocol(g, cfg.setup(), cfg.Seed.Split("fig5-"+dataset))
	err = cfg.run(ctx, "fig5-"+dataset, protocol, factories, func(rec sim.Record) {
		s := series[rec.Policy]
		lo := 0
		for i, hi := range cps {
			n, c := 0, 0
			for idx := lo; idx < hi && idx < len(rec.Result.Steps); idx++ {
				n++
				if rec.Result.Steps[idx].Cautious {
					c++
				}
			}
			if n > 0 {
				s.Add(i, float64(c)/float64(n))
			}
			lo = hi
		}
	})
	if err != nil {
		return nil, fmt.Errorf("exp: fig5 %s: %w", dataset, err)
	}

	// Shape note: higher w_I should front-load cautious requests — the
	// weighted mean request index of cautious fractions should not grow
	// with w_I.
	var notes []string
	center := func(s *stats.Series) float64 {
		var num, den float64
		for i := 0; i < s.Len(); i++ {
			m := s.At(i).Mean()
			num += m * s.X(i)
			den += m
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
	if len(ordered) >= 2 {
		lo, hi := center(ordered[0]), center(ordered[len(ordered)-1])
		if lo > 0 && hi > 0 {
			notes = append(notes, fmt.Sprintf("%s: cautious-request center shifts %.0f → %.0f as wI grows (earlier = smaller)", dataset, lo, hi))
		}
	}

	tab, err := stats.SeriesTable(dataset+" fraction of requests sent to cautious users", "k", ordered)
	if err != nil {
		return nil, fmt.Errorf("exp: fig5 %s: %w", dataset, err)
	}
	tables := []stats.Table{tab}
	return newReport("fig5", fmt.Sprintf("Fraction of requests sent to cautious users (%s)", dataset), tables, notes), nil
}
