package obs

import "time"

// Span measures one timed phase into a duration histogram (nanoseconds).
// The zero Span — returned by StartSpan on a nil registry — is a no-op
// that never reads the clock.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing the named phase. On a nil registry the
// returned Span is inert and costs nothing beyond the nil check.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name), start: time.Now()}
}

// StartSpan begins timing into this histogram directly, avoiding the
// registry lookup — the form to use inside hot loops where the
// histogram was resolved once up front. On a nil histogram the returned
// Span is inert.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End stops the span and records the elapsed nanoseconds. No-op on an
// inert span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(int64(time.Since(s.start)))
}

// Time runs fn under a span for the named phase.
func (r *Registry) Time(name string, fn func()) {
	if r == nil {
		fn()
		return
	}
	sp := r.StartSpan(name)
	fn()
	sp.End()
}
