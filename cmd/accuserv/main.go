// Command accuserv serves Monte-Carlo simulation grids over HTTP.
//
// Jobs are submitted as JSON specs, queued by priority under per-tenant
// quotas, executed by a worker pool, and checkpointed per cell so that a
// killed or drained server resumes every interrupted job from its last
// durable cell after restart. Progress streams over SSE; results, metrics
// and the admin surface (list/cancel/resume) are plain JSON endpoints.
//
// On SIGINT/SIGTERM the server stops accepting jobs, preempts running
// ones (their attempt is not consumed), waits for the workers to park,
// then shuts the listener down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/accu-sim/accu/internal/serv"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8470", "listen address")
		dataDir      = flag.String("data", "accuserv-data", "state directory (job documents and checkpoints)")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = number of CPUs)")
		quota        = flag.Int("quota", 8, "max active (queued+running) jobs per tenant (0 = unlimited)")
		maxAttempts  = flag.Int("max-attempts", 3, "execution attempts per job before it fails")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for running jobs to checkpoint and park on shutdown")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "accuserv: ", log.LstdFlags)

	srv, err := serv.New(serv.Config{
		Dir:                *dataDir,
		Workers:            *workers,
		DefaultQuota:       *quota,
		DefaultMaxAttempts: *maxAttempts,
		Logf:               logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (data %s)", *addr, *dataDir)

	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain

	logger.Printf("signal received, draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain: %v", err)
	} else {
		logger.Printf("drained; all workers parked")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
}
