package pagerank

import (
	"math"
	"testing"

	"github.com/accu-sim/accu/internal/graph"
)

func build(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if _, err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Freeze()
}

func TestScoresSumToOne(t *testing.T) {
	g := build(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}})
	scores, err := Scores(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range scores {
		if s <= 0 {
			t.Errorf("non-positive score %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
}

func TestScoresSymmetricGraphUniform(t *testing.T) {
	// On a cycle all nodes are equivalent: identical scores.
	g := build(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	scores, err := Scores(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(scores); i++ {
		if math.Abs(scores[i]-scores[0]) > 1e-9 {
			t.Fatalf("cycle scores not uniform: %v", scores)
		}
	}
}

func TestScoresHubDominates(t *testing.T) {
	// Star: the center must have the highest score.
	edges := make([][2]int, 0, 9)
	for i := 1; i < 10; i++ {
		edges = append(edges, [2]int{0, i})
	}
	g := build(t, 10, edges)
	scores, err := Scores(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if scores[i] >= scores[0] {
			t.Fatalf("leaf %d score %v >= center %v", i, scores[i], scores[0])
		}
	}
}

func TestScoresDanglingNodes(t *testing.T) {
	// Isolated node must still receive positive mass and the vector
	// must stay a distribution.
	g := build(t, 3, [][2]int{{0, 1}})
	scores, err := Scores(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("sum = %v", sum)
	}
	if scores[2] <= 0 {
		t.Errorf("isolated node score %v", scores[2])
	}
}

func TestScoresEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Freeze()
	scores, err := Scores(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if scores != nil {
		t.Errorf("scores = %v, want nil", scores)
	}
}

func TestScoresOptionValidation(t *testing.T) {
	g := build(t, 2, [][2]int{{0, 1}})
	bad := []Options{
		{Damping: 0, MaxIter: 10, Tol: 1e-9},
		{Damping: 1, MaxIter: 10, Tol: 1e-9},
		{Damping: 0.85, MaxIter: 0, Tol: 1e-9},
		{Damping: 0.85, MaxIter: 10, Tol: 0},
	}
	for _, o := range bad {
		if _, err := Scores(g, o); err == nil {
			t.Errorf("%+v: want error", o)
		}
	}
}

func TestScoresConvergedEqualsLongRun(t *testing.T) {
	g := build(t, 8, [][2]int{{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 3}})
	a, err := Scores(g, Options{Damping: 0.85, MaxIter: 100, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scores(g, Options{Damping: 0.85, MaxIter: 500, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("not converged at node %d: %v vs %v", i, a[i], b[i])
		}
	}
}
