package serv

import "github.com/accu-sim/accu/internal/sim"

// BuildResult assembles the shared result payload from an aggregation
// pass: the record count, the canonical digest, and per-policy snapshots
// in first-seen order. Both the job service's executeJob and the
// internal/dist coordinator produce Results this way, so a distributed
// run's payload is structurally identical to a local service run's.
// Failure fields (FailedCells, Warning) are left to the caller.
func BuildResult(records int, digest *sim.RecordDigest, summary *sim.Summary) *Result {
	res := &Result{
		Records: records,
		Digest:  digest.Sum(),
	}
	for _, policy := range summary.Policies() {
		res.Policies = append(res.Policies, PolicyResult{
			Policy:                policy,
			FinalBenefit:          summary.FinalBenefit(policy).Snapshot(),
			CautiousFriends:       summary.CautiousFriends(policy).Snapshot(),
			FinalBenefitSketch:    summary.FinalBenefitSketch(policy).Snapshot(),
			CautiousFriendsSketch: summary.CautiousFriendsSketch(policy).Snapshot(),
		})
	}
	return res
}
