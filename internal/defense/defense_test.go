package defense

import (
	"context"
	"errors"
	"testing"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// testInstance builds a 300-node random instance with cautious users.
func testInstance(t *testing.T) *osn.Instance {
	t.Helper()
	b := graph.NewBuilder(300)
	r := rng.NewSeed(31, 32).Rand()
	for b.M() < 3000 {
		if _, err := b.AddEdge(r.IntN(300), r.IntN(300)); err != nil {
			t.Fatal(err)
		}
	}
	s := osn.DefaultSetup()
	s.NumCautious = 8
	inst, err := s.Build(b.Freeze(), rng.NewSeed(33, 34))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestAnalyzeCounts(t *testing.T) {
	inst := testInstance(t)
	const runs, k = 6, 25
	a, err := Analyze(context.Background(), inst, ABMAttacker(), runs, k, rng.NewSeed(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != runs || a.K != k || len(a.PerUser) != inst.N() {
		t.Fatalf("analysis shape: %+v", a)
	}
	var targeted, befriended, exposed int
	for u, st := range a.PerUser {
		if st.User != u {
			t.Fatalf("user index mismatch at %d", u)
		}
		if st.Befriended > st.Targeted {
			t.Fatalf("user %d befriended %d > targeted %d", u, st.Befriended, st.Targeted)
		}
		if st.Targeted > runs {
			t.Fatalf("user %d targeted %d > runs", u, st.Targeted)
		}
		targeted += st.Targeted
		befriended += st.Befriended
		exposed += st.Exposed
	}
	if targeted != runs*k {
		t.Errorf("total targeted = %d, want %d", targeted, runs*k)
	}
	if befriended == 0 || exposed == 0 {
		t.Errorf("no compromises recorded: befriended=%d exposed=%d", befriended, exposed)
	}
	if a.MeanBenefit <= 0 {
		t.Errorf("mean benefit = %v", a.MeanBenefit)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	inst := testInstance(t)
	a1, err := Analyze(context.Background(), inst, ABMAttacker(), 3, 15, rng.NewSeed(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(context.Background(), inst, ABMAttacker(), 3, 15, rng.NewSeed(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a1.MeanBenefit != a2.MeanBenefit {
		t.Errorf("benefit not deterministic: %v vs %v", a1.MeanBenefit, a2.MeanBenefit)
	}
	for u := range a1.PerUser {
		if a1.PerUser[u] != a2.PerUser[u] {
			t.Fatalf("user %d stats differ", u)
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	inst := testInstance(t)
	if _, err := Analyze(context.Background(), inst, ABMAttacker(), 0, 5, rng.NewSeed(1, 1)); err == nil {
		t.Error("runs=0: want error")
	}
	if _, err := Analyze(context.Background(), inst, ABMAttacker(), 5, 0, rng.NewSeed(1, 1)); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := Analyze(context.Background(), inst, nil, 5, 5, rng.NewSeed(1, 1)); err == nil {
		t.Error("nil attacker: want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, inst, ABMAttacker(), 5, 5, rng.NewSeed(1, 1)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: %v", err)
	}
}

func TestRatesAndTopCompromised(t *testing.T) {
	inst := testInstance(t)
	a, err := Analyze(context.Background(), inst, ABMAttacker(), 5, 30, rng.NewSeed(7, 8))
	if err != nil {
		t.Fatal(err)
	}
	top := a.TopCompromised(10)
	if len(top) != 10 {
		t.Fatalf("top = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Befriended > top[i-1].Befriended {
			t.Fatal("TopCompromised not sorted")
		}
	}
	u := top[0].User
	if r := a.CompromiseRate(u); r <= 0 || r > 1 {
		t.Errorf("compromise rate = %v", r)
	}
	if r := a.ExposureRate(u); r < 0 || r > 1 {
		t.Errorf("exposure rate = %v", r)
	}
	// Asking for more than N clips.
	if got := a.TopCompromised(inst.N() + 50); len(got) != inst.N() {
		t.Errorf("clipped top = %d", len(got))
	}
}

func TestHarden(t *testing.T) {
	inst := testInstance(t)
	targets := []int{}
	for u := 0; u < inst.N() && len(targets) < 5; u++ {
		if inst.Kind(u) == osn.Reckless && inst.Graph().Degree(u) > 0 {
			targets = append(targets, u)
		}
	}
	hardened, err := Harden(inst, targets, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range targets {
		if hardened.Kind(u) != osn.Cautious {
			t.Errorf("user %d not hardened", u)
		}
		if hardened.Theta(u) < 1 {
			t.Errorf("user %d theta %d", u, hardened.Theta(u))
		}
	}
	// Original untouched.
	for _, u := range targets {
		if inst.Kind(u) != osn.Reckless {
			t.Error("Harden mutated the original instance")
		}
	}
	// Cautious count grew.
	if hardened.NumCautious() != inst.NumCautious()+len(targets) {
		t.Errorf("cautious %d, want %d", hardened.NumCautious(), inst.NumCautious()+len(targets))
	}
}

func TestHardenIdempotentOnCautious(t *testing.T) {
	inst := testInstance(t)
	c := inst.Cautious()[0]
	hardened, err := Harden(inst, []int{c}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if hardened.Theta(c) != inst.Theta(c) {
		t.Error("hardening an already-cautious user changed its threshold")
	}
}

func TestHardenValidation(t *testing.T) {
	inst := testInstance(t)
	if _, err := Harden(inst, []int{0}, 0); err == nil {
		t.Error("fraction=0: want error")
	}
	if _, err := Harden(inst, []int{-1}, 0.3); err == nil {
		t.Error("bad user: want error")
	}
}

func TestHardeningReducesAttack(t *testing.T) {
	// The headline defense claim: hardening the most-compromised users
	// lowers the attacker's benefit.
	inst := testInstance(t)
	const runs, k = 8, 30
	seed := rng.NewSeed(9, 10)
	before, err := Analyze(context.Background(), inst, ABMAttacker(), runs, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	var targets []int
	for _, st := range before.TopCompromised(20) {
		if inst.Kind(st.User) == osn.Reckless {
			targets = append(targets, st.User)
		}
	}
	hardened, err := Harden(inst, targets, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(context.Background(), hardened, ABMAttacker(), runs, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before.MeanBenefit {
		t.Errorf("hardening did not reduce benefit: %v -> %v", before.MeanBenefit, after)
	}
}
