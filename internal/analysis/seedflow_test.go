package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, analysis.SeedFlow(), analysistest.Fixture{
		Dir:        "testdata/src/seedflow_sim",
		ImportPath: "example.test/internal/sim",
		Deps:       stubDeps,
	})
}
