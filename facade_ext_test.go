package accu_test

import (
	"bytes"
	"context"
	"testing"

	accu "github.com/accu-sim/accu"
)

// smallInstance builds a shared fixture for the extension-API tests.
func smallInstance(t *testing.T) (*accu.Instance, *accu.Realization) {
	t.Helper()
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		t.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		t.Fatal(err)
	}
	g, err := generator.Generate(accu.NewSeed(31, 32))
	if err != nil {
		t.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 8
	inst, err := setup.Build(g, accu.NewSeed(33, 34))
	if err != nil {
		t.Fatal(err)
	}
	return inst, inst.SampleRealization(accu.NewSeed(35, 36))
}

func TestPublicRunBatched(t *testing.T) {
	_, re := smallInstance(t)
	abm, err := accu.NewABM(accu.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := accu.RunBatched(abm, re, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 20 || res.Benefit <= 0 {
		t.Errorf("batched result: steps=%d benefit=%v", len(res.Steps), res.Benefit)
	}
	// The journal replays to the same outcome.
	st, err := res.Journal.Replay(re)
	if err != nil {
		t.Fatal(err)
	}
	if st.Benefit() != res.Benefit {
		t.Errorf("replay %v vs %v", st.Benefit(), res.Benefit)
	}
}

func TestPublicRunMulti(t *testing.T) {
	_, re := smallInstance(t)
	res, err := accu.RunMulti(re, 3, 15, accu.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bots != 3 || len(res.Steps) != 15 || res.Benefit <= 0 {
		t.Errorf("multi result: %+v", res)
	}
	ms, err := accu.NewMultiAttack(re, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Bots() != 2 {
		t.Errorf("bots = %d", ms.Bots())
	}
}

func TestPublicDefenseFlow(t *testing.T) {
	inst, _ := smallInstance(t)
	a, err := accu.AnalyzeVulnerability(context.Background(), inst, accu.ABMAttacker(), 3, 15, accu.NewSeed(41, 42))
	if err != nil {
		t.Fatal(err)
	}
	top := a.TopCompromised(5)
	if len(top) != 5 {
		t.Fatalf("top = %d", len(top))
	}
	targets := make([]int, 0, 5)
	for _, st := range top {
		targets = append(targets, st.User)
	}
	hardened, err := accu.Harden(inst, targets, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if hardened.NumCautious() < inst.NumCautious() {
		t.Error("hardening lost cautious users")
	}
}

func TestPublicJournalRoundTrip(t *testing.T) {
	_, re := smallInstance(t)
	abm, err := accu.NewABM(accu.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := accu.Run(abm, re, 12)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := res.Journal.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	j, err := accu.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := j.Replay(re)
	if err != nil {
		t.Fatal(err)
	}
	if st.Benefit() != res.Benefit {
		t.Errorf("round-trip replay %v vs %v", st.Benefit(), res.Benefit)
	}
}

func TestPublicSummary(t *testing.T) {
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		t.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		t.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 5
	factories, err := accu.DefaultFactories(accu.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	sum := accu.NewSummary([]int{5, 10})
	protocol := accu.Protocol{
		Gen: generator, Setup: setup,
		Networks: 1, Runs: 2, K: 10,
		Seed: accu.NewSeed(51, 52),
	}
	if err := accu.MonteCarlo(context.Background(), protocol, factories, sum.Collect); err != nil {
		t.Fatal(err)
	}
	if len(sum.Policies()) != len(factories) {
		t.Errorf("policies = %v", sum.Policies())
	}
	for _, name := range sum.Policies() {
		if sum.FinalBenefit(name).Count() != 2 {
			t.Errorf("%s count = %d", name, sum.FinalBenefit(name).Count())
		}
	}
}

func TestPublicSoftModelAndCurvature(t *testing.T) {
	// Build a soft-cautious instance via the Setup path and check the
	// curvature helpers.
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		t.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		t.Fatal(err)
	}
	g, err := generator.Generate(accu.NewSeed(61, 62))
	if err != nil {
		t.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 5
	setup.QLowCautious = 0.1
	setup.QHighCautious = 1
	inst, err := setup.Build(g, accu.NewSeed(63, 64))
	if err != nil {
		t.Fatal(err)
	}
	delta := accu.CurvatureDelta(inst)
	if delta != 10 {
		t.Errorf("δ = %v, want 10", delta)
	}
	bound := accu.CurvatureBound(delta, 20)
	if bound < 0.09 || bound > 0.1 {
		t.Errorf("bound = %v, want ≈ 0.095 (paper's numeric example)", bound)
	}
}

func TestPublicBatchProtocol(t *testing.T) {
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		t.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		t.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 5
	factories, err := accu.DefaultFactories(accu.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	protocol := accu.Protocol{
		Gen: generator, Setup: setup,
		Networks: 1, Runs: 1, K: 12, BatchSize: 4,
		Seed: accu.NewSeed(71, 72),
	}
	n := 0
	err = accu.MonteCarlo(context.Background(), protocol, factories, func(rec accu.Record) {
		n++
		if len(rec.Result.Steps) != 12 {
			t.Errorf("%s: steps = %d", rec.Policy, len(rec.Result.Steps))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(factories) {
		t.Errorf("records = %d", n)
	}
}
