package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns with the go command, parses and
// type-checks every matched package from source, and returns them in the
// order the go command reported. Imports — including in-module imports
// and the standard library — are resolved through compiler export data
// produced by `go list -export`, so loading is fully offline and shares
// the build cache.
//
// dir is the working directory for pattern resolution (any directory
// inside the module); pass "" for the current directory.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export-data index over every listed package and dependency.
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.CgoFiles) > 0 {
			// Cgo packages cannot be type-checked from source without the
			// generated files; this module has none, so refuse loudly
			// rather than silently skipping.
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", e.ImportPath)
		}
		pkg, err := checkPackage(fset, imp, e)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportData resolves compiler export-data files for the named packages
// and their transitive dependencies via `go list -deps -export`. The
// fixture harness uses it to type-check testdata packages against the
// real standard library without network access.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer that resolves packages through
// compiler export-data files, keyed by package path.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// goList runs `go list -deps -export -json` over the patterns.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Incomplete,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return TypeCheck(fset, imp, e.ImportPath, files)
}

// TypeCheck type-checks a parsed package under the given importer. It is
// the common entry point for the loader, the unitchecker driver and the
// test fixture harness.
func TypeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	dir := ""
	if len(files) > 0 {
		dir = filepath.Dir(fset.Position(files[0].Pos()).Filename)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
