package core

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapPushPopOrdered(t *testing.T) {
	var h potentialHeap
	scores := []float64{3, 1, 4, 1.5, 9, 2.6, 5}
	for i, s := range scores {
		h.push(heapEntry{score: s, user: int32(i)})
	}
	want := append([]float64(nil), scores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for i, w := range want {
		e := h.pop()
		if e.score != w {
			t.Fatalf("pop %d: score %v, want %v", i, e.score, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("len = %d after draining", h.Len())
	}
}

func TestHeapTieBreaksByUser(t *testing.T) {
	var h potentialHeap
	for _, u := range []int32{5, 2, 9, 1} {
		h.push(heapEntry{score: 7, user: u})
	}
	for _, want := range []int32{1, 2, 5, 9} {
		if got := h.pop().user; got != want {
			t.Fatalf("tie-break order: got %d, want %d", got, want)
		}
	}
}

func TestHeapInitFromBulk(t *testing.T) {
	h := make(potentialHeap, 0, 100)
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		h = append(h, heapEntry{score: r.Float64(), user: int32(i)})
	}
	h.init()
	prev := h.pop()
	for h.Len() > 0 {
		cur := h.pop()
		if cur.score > prev.score {
			t.Fatalf("heap order violated: %v after %v", cur.score, prev.score)
		}
		prev = cur
	}
}

func TestHeapPropertyMatchesSort(t *testing.T) {
	f := func(raw []float64) bool {
		var h potentialHeap
		for i, s := range raw {
			if s != s { // NaN breaks any comparator; skip
				return true
			}
			h.push(heapEntry{score: s, user: int32(i)})
		}
		out := make([]float64, 0, len(raw))
		for h.Len() > 0 {
			out = append(out, h.pop().score)
		}
		want := append([]float64(nil), raw...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
