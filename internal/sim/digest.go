package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// RecordDigest accumulates a canonical fingerprint of a Monte-Carlo
// record set. Because the engine delivers records in nondeterministic
// cell order, the digest is order-insensitive: each record is marshaled
// to its canonical JSON line and the SHA-256 runs over the sorted lines.
// Two runs of the same protocol — uninterrupted, resumed from a
// checkpoint, or executed at different worker counts — therefore produce
// the same digest iff their record sets are bit-identical.
//
// Feed it as (or from) a collect callback, and on resume feed
// CellJournal.Replay through it first. Collect is safe for concurrent
// use, although the engine itself invokes collect serially.
type RecordDigest struct {
	mu    sync.Mutex
	lines []string
}

// NewRecordDigest returns an empty digest accumulator.
func NewRecordDigest() *RecordDigest { return &RecordDigest{} }

// Collect folds one record into the digest.
func (d *RecordDigest) Collect(rec Record) {
	line, err := json.Marshal(rec)
	if err != nil {
		// Record marshals by construction (plain structs, no cycles);
		// a failure here is a programming error, not an input error.
		panic(fmt.Sprintf("sim: marshal record for digest: %v", err))
	}
	d.mu.Lock()
	d.lines = append(d.lines, string(line))
	d.mu.Unlock()
}

// Count returns the number of records folded in so far.
func (d *RecordDigest) Count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.lines)
}

// Sum returns the hex SHA-256 of the sorted canonical record lines.
// It may be called repeatedly; later Collects extend the set.
func (d *RecordDigest) Sum() string {
	d.mu.Lock()
	lines := append([]string(nil), d.lines...)
	d.mu.Unlock()
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
