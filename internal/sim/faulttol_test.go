package sim

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/rng"
)

var errBoom = errors.New("boom")

// nonReusable hides a policy's Reusable implementation so the scheduler
// constructs a fresh instance per cell — the factory's New (and any
// fault decision in it) then runs for every cell, not once per worker.
type nonReusable struct{ core.Policy }

// policySeed reproduces the engine's attempt-0 seed derivation for
// factory fi of cell (i, j), so tests can pre-compute exactly which New
// calls belong to which cells.
func policySeed(p Protocol, i, j, fi int) rng.Seed {
	return p.Seed.SplitN("network", i).SplitN("run", j).SplitN("policy", fi)
}

// seededFaultFactory fails construction for the given policy seeds and
// stalls construction for the given duration on stall seeds; otherwise it
// yields a MaxDegree policy.
func seededFaultFactory(name string, fail map[rng.Seed]bool, stall map[rng.Seed]bool, stallFor time.Duration) PolicyFactory {
	return PolicyFactory{Name: name, New: func(s rng.Seed) (core.Policy, error) {
		if stall[s] {
			time.Sleep(stallFor)
		}
		if fail[s] {
			return nil, errBoom
		}
		return nonReusable{core.NewMaxDegree()}, nil
	}}
}

func TestRunContinueOnErrorCollectsSurvivors(t *testing.T) {
	p := testProtocol()
	p.Networks = 3
	p.Runs = 2
	failCells := []CellKey{{Network: 0, Run: 1}, {Network: 2, Run: 0}}
	fail := map[rng.Seed]bool{}
	for _, c := range failCells {
		fail[policySeed(p, c.Network, c.Run, 0)] = true
	}
	clean := seededFaultFactory("victim", nil, nil, 0)
	var want []Record
	if err := Run(context.Background(), p, []PolicyFactory{clean}, func(r Record) { want = append(want, r) }); err != nil {
		t.Fatal(err)
	}
	survivors := want[:0]
	for _, r := range want {
		failed := false
		for _, c := range failCells {
			if r.Network == c.Network && r.Run == c.Run {
				failed = true
			}
		}
		if !failed {
			survivors = append(survivors, r)
		}
	}

	p.ContinueOnError = true
	reg := obs.New()
	p.Metrics = reg
	faulty := seededFaultFactory("victim", fail, nil, 0)
	var got []Record
	err := Run(context.Background(), p, []PolicyFactory{faulty}, func(r Record) { got = append(got, r) })
	var sum *FailureSummary
	if !errors.As(err, &sum) {
		t.Fatalf("err = %v, want *FailureSummary", err)
	}
	if len(sum.Failures) != len(failCells) || sum.Cells != p.Networks*p.Runs {
		t.Fatalf("summary = %d failures of %d cells, want %d of %d",
			len(sum.Failures), sum.Cells, len(failCells), p.Networks*p.Runs)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("summary does not unwrap to the injected error: %v", err)
	}
	for _, ce := range sum.Failures {
		if ce.Policy != "victim" {
			t.Errorf("cell (%d,%d): Policy = %q, want victim", ce.Network, ce.Run, ce.Policy)
		}
	}
	// Every non-faulted cell's record must match the clean run's exactly.
	if !bytes.Equal(marshalRecords(t, got), marshalRecords(t, survivors)) {
		t.Error("surviving records differ from the uninterrupted run")
	}
	if v := reg.Counter("sim.cell_failures").Value(); v != int64(len(failCells)) {
		t.Errorf("sim.cell_failures = %d, want %d", v, len(failCells))
	}
	if v := reg.Counter("sim.cells").Value(); v != int64(len(got)) {
		t.Errorf("sim.cells = %d, want collected count %d", v, len(got))
	}
}

func TestRunFailsFastWithoutContinueOnError(t *testing.T) {
	p := testProtocol()
	fail := map[rng.Seed]bool{policySeed(p, 1, 0, 0): true}
	err := Run(context.Background(), p, []PolicyFactory{seededFaultFactory("victim", fail, nil, 0)}, func(Record) {})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if ce.Network != 1 || ce.Run != 0 || ce.Policy != "victim" {
		t.Errorf("cell error = %+v, want network 1 run 0 policy victim", ce)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("cell error does not unwrap to the injected error: %v", err)
	}
}

func TestRunFailureBudget(t *testing.T) {
	p := testProtocol()
	p.Workers = 1 // deterministic failure order for the budget check
	p.ContinueOnError = true
	p.MaxFailures = 1
	fail := map[rng.Seed]bool{
		policySeed(p, 0, 0, 0): true,
		policySeed(p, 1, 1, 0): true,
	}
	err := Run(context.Background(), p, []PolicyFactory{seededFaultFactory("victim", fail, nil, 0)}, func(Record) {})
	if err == nil || !strings.Contains(err.Error(), "failure budget exhausted") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	var sum *FailureSummary
	if errors.As(err, &sum) {
		t.Errorf("budget exhaustion reported as a benign FailureSummary: %v", err)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("budget error does not unwrap to the injected error: %v", err)
	}
}

func TestRunRetriesRecoverTransientFaults(t *testing.T) {
	p := testProtocol()
	p.Retries = 1
	// Fault only the attempt-0 policy seeds: the retry re-derives the cell
	// seed under a fresh "retry" branch, so attempt 1 succeeds.
	fail := map[rng.Seed]bool{
		policySeed(p, 0, 1, 0): true,
		policySeed(p, 2, 0, 0): true,
	}
	reg := obs.New()
	p.Metrics = reg
	run := func() ([]byte, int) {
		var recs []Record
		if err := Run(context.Background(), p, []PolicyFactory{seededFaultFactory("victim", fail, nil, 0)}, func(r Record) {
			recs = append(recs, r)
		}); err != nil {
			t.Fatal(err)
		}
		return marshalRecords(t, recs), len(recs)
	}
	first, collected := run()
	if want := p.Networks * p.Runs; collected != want {
		t.Errorf("collected %d records, want the full grid of %d", collected, want)
	}
	if v := reg.Counter("sim.cell_retries").Value(); v != int64(len(fail)) {
		t.Errorf("sim.cell_retries = %d, want %d", v, len(fail))
	}
	if v := reg.Counter("sim.cell_failures").Value(); v != 0 {
		t.Errorf("sim.cell_failures = %d, want 0 (all retries recovered)", v)
	}
	// Retried seed derivation is deterministic: same faults, same records.
	if second, _ := run(); !bytes.Equal(first, second) {
		t.Error("retried grid not reproducible across runs")
	}
}

func TestRunCellTimeout(t *testing.T) {
	p := testProtocol()
	p.ContinueOnError = true
	p.CellTimeout = 25 * time.Millisecond
	stall := map[rng.Seed]bool{policySeed(p, 1, 1, 0): true}
	reg := obs.New()
	p.Metrics = reg
	var got []Record
	err := Run(context.Background(), p, []PolicyFactory{seededFaultFactory("victim", nil, stall, 300*time.Millisecond)}, func(r Record) {
		got = append(got, r)
	})
	var sum *FailureSummary
	if !errors.As(err, &sum) {
		t.Fatalf("err = %v, want *FailureSummary", err)
	}
	if !errors.Is(err, ErrCellTimeout) {
		t.Fatalf("summary does not unwrap to ErrCellTimeout: %v", err)
	}
	if len(sum.Failures) != 1 || sum.Failures[0].Network != 1 || sum.Failures[0].Run != 1 {
		t.Fatalf("failures = %+v, want exactly cell (1,1)", sum.Failures)
	}
	if want := p.Networks*p.Runs - 1; len(got) != want {
		t.Errorf("collected %d records, want %d", len(got), want)
	}
	if v := reg.Counter("sim.cell_timeouts").Value(); v < 1 {
		t.Errorf("sim.cell_timeouts = %d, want >= 1", v)
	}
}

// TestRunCancellationUnpinsInstances is the -race regression test for
// the cell-lifecycle fixes: cancelling mid-grid must leave no network
// instance pinned in a slot, no goroutine behind, and the sim.cells
// counter equal to the records actually collected.
func TestRunCancellationUnpinsInstances(t *testing.T) {
	before := runtime.NumGoroutine()
	p := testProtocol()
	p.Networks = 2
	p.Runs = 10
	p.Workers = 4
	reg := obs.New()
	p.Metrics = reg
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(p, factories)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int64
	err = e.run(ctx, func(Record) {
		if n.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range e.nets {
		if e.nets[i].inst.Load() != nil {
			t.Errorf("network %d instance still pinned after cancelled run", i)
		}
	}
	if v := reg.Counter("sim.cells").Value(); v != n.Load() {
		t.Errorf("sim.cells = %d, want collected count %d", v, n.Load())
	}
	// The pool must have fully drained: allow the runtime a moment to
	// retire worker goroutines, then compare against the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestRunCompletionUnpinsInstances pins the release-accounting fix: a
// fully successful grid ends with every network slot unpinned, because
// runCell now releases on every path instead of only the happy one.
func TestRunCompletionUnpinsInstances(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(p, factories)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.run(context.Background(), func(Record) {}); err != nil {
		t.Fatal(err)
	}
	for i := range e.nets {
		if e.nets[i].inst.Load() != nil {
			t.Errorf("network %d instance still pinned after full run", i)
		}
		if rem := e.nets[i].remaining.Load(); rem != 0 {
			t.Errorf("network %d: %d releases unaccounted", i, rem)
		}
	}
}

// TestRunContinueOnErrorSurvivesCancellationAccounting runs a faulted,
// continue-on-error grid under -race with several workers to shake out
// races between the failure ledger, delivery and release paths.
func TestRunContinueOnErrorConcurrent(t *testing.T) {
	p := testProtocol()
	p.Networks = 4
	p.Runs = 4
	p.Workers = 8
	p.ContinueOnError = true
	fail := map[rng.Seed]bool{}
	for _, c := range []CellKey{{0, 0}, {1, 3}, {2, 2}, {3, 1}} {
		fail[policySeed(p, c.Network, c.Run, 0)] = true
	}
	reg := obs.New()
	p.Metrics = reg
	var n atomic.Int64
	err := Run(context.Background(), p, []PolicyFactory{seededFaultFactory("victim", fail, nil, 0)}, func(Record) { n.Add(1) })
	var sum *FailureSummary
	if !errors.As(err, &sum) {
		t.Fatalf("err = %v, want *FailureSummary", err)
	}
	if len(sum.Failures) != len(fail) {
		t.Errorf("failures = %d, want %d", len(sum.Failures), len(fail))
	}
	if want := int64(p.Networks*p.Runs - len(fail)); n.Load() != want {
		t.Errorf("collected %d records, want %d", n.Load(), want)
	}
	if v := reg.Counter("sim.cells").Value(); v != n.Load() {
		t.Errorf("sim.cells = %d, want %d", v, n.Load())
	}
}
