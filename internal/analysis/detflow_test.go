package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, analysis.Detflow(), analysistest.Fixture{
		Dir:        "testdata/src/detflow_sim",
		ImportPath: "example.test/internal/sim",
	})
}

// TestDetflowOutOfScope pins that the flow check stays quiet outside the
// deterministic packages — handlers may time requests into metrics.
func TestDetflowOutOfScope(t *testing.T) {
	_, _, diags := analysistest.Diagnostics(t, analysis.Detflow(), analysistest.Fixture{
		Dir:        "testdata/src/detflow_sim",
		ImportPath: "example.test/internal/serv",
	})
	if len(diags) != 0 {
		t.Fatalf("detflow out of scope reported %d findings, want 0: %v", len(diags), diags)
	}
}
