package exp

import (
	"context"
	"fmt"
	"strings"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/stats"
	"github.com/accu-sim/accu/internal/theory"
)

// claim is one checkable qualitative statement from the paper.
type claim struct {
	id        string
	source    string // where the paper makes the claim
	statement string
	check     func(ctx context.Context, cfg Config) (bool, string, error)
}

// Claims runs the paper's qualitative claims as an executable checklist:
// each row re-derives one finding from fresh simulations and reports
// pass/fail with the observed evidence. This is the one-command
// reproduction check.
func Claims(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	header := []string{"claim", "source", "holds", "evidence"}
	var rows [][]string
	var notes []string
	failures := 0
	for _, c := range paperClaims() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ok, evidence, err := c.check(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: claim %s: %w", c.id, err)
		}
		if !ok {
			failures++
		}
		rows = append(rows, []string{c.id, c.source, fmt.Sprintf("%v", ok), evidence})
		notes = append(notes, fmt.Sprintf("%s: %s", c.id, c.statement))
	}
	if failures > 0 {
		notes = append(notes, fmt.Sprintf("%d claim(s) FAILED at this Monte-Carlo budget — re-run with more networks/runs before concluding a mismatch", failures))
	}
	tables := []stats.Table{{Header: header, Rows: rows}}
	return newReport("claims", "Executable checklist of the paper's qualitative claims", tables, notes), nil
}

// claimSummary runs the default policy roster once and aggregates.
func claimSummary(ctx context.Context, cfg Config, dataset string, w core.Weights, label string) (*sim.Summary, error) {
	g, _, err := cfg.generator(dataset)
	if err != nil {
		return nil, err
	}
	factories, err := sim.DefaultFactories(w, cfg.abmOptions()...)
	if err != nil {
		return nil, err
	}
	sum := sim.NewSummary(nil)
	name := "claims-" + label + "-" + dataset
	protocol := cfg.protocol(g, cfg.setup(), cfg.Seed.Split(name))
	if err := cfg.run(ctx, name, protocol, factories, sum.Collect); err != nil {
		return nil, err
	}
	return sum, nil
}

// abmOf finds the ABM entry in a summary ("greedy" is ABM with w_I = 0).
func abmOf(sum *sim.Summary) string {
	for _, name := range sum.Policies() {
		if strings.HasPrefix(name, "abm") || name == "greedy" {
			return name
		}
	}
	return ""
}

func paperClaims() []claim {
	return []claim{
		{
			id:        "abm-dominates",
			source:    "§IV-B Fig.2",
			statement: "ABM collects at least as much benefit as MaxDegree, PageRank and Random on every dataset",
			check: func(ctx context.Context, cfg Config) (bool, string, error) {
				worstMargin := 1e18
				var where string
				for _, ds := range cfg.Datasets {
					sum, err := claimSummary(ctx, cfg, ds, cfg.Weights, "dom")
					if err != nil {
						return false, "", err
					}
					abm := sum.FinalBenefit(abmOf(sum)).Mean()
					for _, name := range sum.Policies() {
						if strings.HasPrefix(name, "abm") {
							continue
						}
						if margin := abm - sum.FinalBenefit(name).Mean(); margin < worstMargin {
							worstMargin = margin
							where = ds + "/" + name
						}
					}
				}
				return worstMargin >= 0, fmt.Sprintf("min margin %+.1f (%s)", worstMargin, where), nil
			},
		},
		{
			id:        "random-worst",
			source:    "§IV-B Fig.2",
			statement: "the Random baseline is the weakest policy on every dataset",
			check: func(ctx context.Context, cfg Config) (bool, string, error) {
				for _, ds := range cfg.Datasets {
					sum, err := claimSummary(ctx, cfg, ds, cfg.Weights, "dom")
					if err != nil {
						return false, "", err
					}
					rnd := sum.FinalBenefit("random").Mean()
					for _, name := range sum.Policies() {
						if name == "random" {
							continue
						}
						if sum.FinalBenefit(name).Mean() < rnd {
							return false, fmt.Sprintf("%s below random on %s", name, ds), nil
						}
					}
				}
				return true, "random last everywhere", nil
			},
		},
		{
			id:        "wI-monotone-cautious",
			source:    "§IV-C Fig.4",
			statement: "the number of cautious friends grows (weakly) with w_I",
			check: func(ctx context.Context, cfg Config) (bool, string, error) {
				ds := fig45Dataset(cfg)
				var seq []string
				var accs []*stats.Welford
				for _, wi := range []float64{0, 0.3, 0.6} {
					sum, err := claimSummary(ctx, cfg, ds, core.Weights{WD: 1 - wi, WI: wi}, fmt.Sprintf("wi%v", wi))
					if err != nil {
						return false, "", err
					}
					acc := sum.CautiousFriends(abmOf(sum))
					accs = append(accs, acc)
					seq = append(seq, fmt.Sprintf("%.2f", acc.Mean()))
				}
				// Endpoint comparison with confidence slack: the trend is
				// refuted only when the w_I=0.6 estimate falls below the
				// w_I=0 estimate beyond both confidence intervals.
				first, last := accs[0], accs[len(accs)-1]
				ok := last.Mean()+last.CI95() >= first.Mean()-first.CI95()
				return ok, strings.Join(seq, " → "), nil
			},
		},
		{
			id:        "indirect-term-helps",
			source:    "§IV-C Fig.4",
			statement: "some w_I > 0 beats the pure greedy w_I = 0 (the paper's case for the indirect term)",
			check: func(ctx context.Context, cfg Config) (bool, string, error) {
				ds := fig45Dataset(cfg)
				base, err := claimSummary(ctx, cfg, ds, core.Weights{WD: 1, WI: 0}, "wi0")
				if err != nil {
					return false, "", err
				}
				pure := base.FinalBenefit("greedy").Mean()
				best := pure
				for _, wi := range []float64{0.2, 0.4} {
					sum, err := claimSummary(ctx, cfg, ds, core.Weights{WD: 1 - wi, WI: wi}, fmt.Sprintf("wi%v", wi))
					if err != nil {
						return false, "", err
					}
					if b := sum.FinalBenefit(abmOf(sum)).Mean(); b > best {
						best = b
					}
				}
				return best >= pure, fmt.Sprintf("pure %.1f vs best weighted %.1f", pure, best), nil
			},
		},
		{
			id:        "theta-blocks-cautious",
			source:    "§IV-D Fig.7",
			statement: "raising the acceptance threshold reduces the cautious users cracked",
			check: func(ctx context.Context, cfg Config) (bool, string, error) {
				ds := fig45Dataset(cfg)
				g, _, err := cfg.generator(ds)
				if err != nil {
					return false, "", err
				}
				abm, err := sim.ABMFactory(cfg.Weights, cfg.abmOptions()...)
				if err != nil {
					return false, "", err
				}
				var means []float64
				for _, tf := range []float64{0.1, 0.5} {
					setup := cfg.setup()
					setup.ThetaFraction = tf
					var acc stats.Welford
					name := fmt.Sprintf("claims-theta-%v", tf)
					protocol := cfg.protocol(g, setup, cfg.Seed.Split(name))
					err := cfg.run(ctx, name, protocol, []sim.PolicyFactory{abm}, func(rec sim.Record) {
						acc.Add(float64(rec.Result.CautiousFriends))
					})
					if err != nil {
						return false, "", err
					}
					means = append(means, acc.Mean())
				}
				return means[1] <= means[0], fmt.Sprintf("θ=0.1: %.2f vs θ=0.5: %.2f", means[0], means[1]), nil
			},
		},
		{
			id:        "not-adaptive-submodular",
			source:    "§III-B Fig.1",
			statement: "the benefit function violates adaptive submodularity on the Fig.1 instance",
			check: func(ctx context.Context, cfg Config) (bool, string, error) {
				w, err := theory.NonSubmodularWitness()
				if err != nil {
					return false, "", err
				}
				return w.DeltaLate > w.DeltaEarly,
					fmt.Sprintf("Δ(v1|∅)=%.1f < Δ(v1|ω2)=%.1f", w.DeltaEarly, w.DeltaLate), nil
			},
		},
		{
			id:        "curvature-unbounded",
			source:    "§III-B",
			statement: "the adaptive total primal curvature is unbounded under the deterministic threshold model",
			check: func(ctx context.Context, cfg Config) (bool, string, error) {
				gamma, _, err := theory.CurvatureWitness()
				if err != nil {
					return false, "", err
				}
				return gamma > 1e18, fmt.Sprintf("Γ = %v", gamma), nil
			},
		},
		{
			id:        "theorem1-bound",
			source:    "§III-B Theorem 1",
			statement: "greedy ≥ (1 − e^{−λ})·OPT on the enumerable verification instances",
			check: func(ctx context.Context, cfg Config) (bool, string, error) {
				worst := 1e18
				for _, tc := range thm1Cases() {
					inst, err := tc.build()
					if err != nil {
						return false, "", err
					}
					lambda, err := theory.AdaptiveSubmodularRatio(inst)
					if err != nil {
						return false, "", err
					}
					opt, err := theory.OptimalValue(inst, tc.k)
					if err != nil {
						return false, "", err
					}
					gre, err := theory.GreedyValue(inst, tc.k)
					if err != nil {
						return false, "", err
					}
					if slack := gre - theory.Bound(lambda)*opt; slack < worst {
						worst = slack
					}
				}
				return worst >= -1e-9, fmt.Sprintf("min slack %.3f", worst), nil
			},
		},
	}
}
