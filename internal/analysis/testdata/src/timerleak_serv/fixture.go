// Fixture for the timerleak analyzer: time.After in loops and time.Tick
// anywhere.
package serv

import "time"

func afterInLoop(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Second): // want `time\.After inside a loop allocates a timer every iteration`
		}
	}
}

func tickAnywhere() <-chan time.Time {
	return time.Tick(time.Second) // want `time\.Tick leaks its Ticker`
}

func afterOnce(timeout time.Duration) {
	<-time.After(timeout) // single shot outside a loop: fine
}

func reaperPattern(done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
}

func litInLoopIsCharged(n int) {
	for i := 0; i < n; i++ {
		wait := func() { <-time.After(time.Millisecond) } // charged to the literal, not the loop
		wait()
	}
}

func deadlineCompareIsNotATimer(deadlines []time.Time) bool {
	now := time.Now()
	for _, d := range deadlines {
		if now.After(d) { // time.Time.After is a comparison, not a timer
			return true
		}
	}
	return false
}

func allowedAfter(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Minute): //accu:allow timerleak -- long-period watchdog, one live timer is acceptable
		}
	}
}
