package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCellJournalReplay feeds arbitrary bytes to the journal loader's
// resume path. Whatever the on-disk state — torn tails, corrupt lines,
// binary garbage — resume must never panic, a journal that loads must
// replay exactly its loaded cells, and it must stay re-appendable: a
// fresh commit after recovery survives the next resume.
func FuzzCellJournalReplay(f *testing.F) {
	line := func(n, r int) []byte {
		b, err := json.Marshal(CellLine{
			CellKey: CellKey{Network: n, Run: r},
			Records: []Record{{Policy: "abm", Network: n, Run: r}},
		})
		if err != nil {
			f.Fatal(err)
		}
		return append(b, '\n')
	}
	valid := append(line(0, 0), line(0, 1)...)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(append(valid, []byte(`{"network":1,"run"`)...)) // torn tail
	f.Add(append(append(line(0, 0), []byte("{corrupt}\n")...), line(2, 2)...))
	f.Add(append(line(0, 0), line(0, 0)...)) // duplicate cell
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cells.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenCellJournal(path, true)
		if err != nil {
			return // refusing an unreadable journal is fine; panicking is not
		}
		cells := j.Cells()
		replayed := 0
		j.Replay(func(Record) { replayed++ })
		if cells == 0 && replayed != 0 {
			t.Fatalf("replayed %d records from a journal reporting 0 cells", replayed)
		}
		// The recovered journal must accept and retain a fresh commit.
		key := CellKey{Network: -7, Run: -13}
		added := 0
		if !j.Done(key) {
			if err := j.Commit(key, []Record{{Policy: "fuzz", Network: -7, Run: -13}}); err != nil {
				t.Fatalf("commit after recovery: %v", err)
			}
			added = 1
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		j2, err := OpenCellJournal(path, true)
		if err != nil {
			t.Fatalf("journal not resumable after recovered append: %v", err)
		}
		defer j2.Close()
		if !j2.Done(key) {
			t.Fatal("cell committed after recovery vanished on resume")
		}
		if got := j2.Cells(); got != cells+added {
			t.Fatalf("resume after recovered append: got %d cells, want %d", got, cells+added)
		}
	})
}
