package analysis

import (
	"go/ast"
)

// TimerLeak returns the leaked-timer analyzer. Two shapes:
//
//   - time.After inside a loop: each iteration allocates a fresh timer
//     that is not collected until it fires, so a tight select-loop with
//     a long timeout accumulates them — the TTL-reaper bug shape. The
//     loop wants one time.NewTimer/NewTicker hoisted out and stopped.
//   - time.Tick anywhere: the returned channel's Ticker has no Stop
//     handle at all, so it runs (and holds its goroutine's timer) for
//     the life of the process. Under go 1.22 (this module's language
//     version) that is an unconditional leak; use time.NewTicker with
//     defer Stop, as internal/dist's lease reaper does.
//
// Loop scope is lexical within one function: a time.After inside a
// function literal is charged to the literal, not to a loop the literal
// merely sits in — the literal may run once, long after the loop.
func TimerLeak() *Analyzer {
	a := &Analyzer{
		Name: "timerleak",
		Doc: "flag time.After inside loops (a timer allocated per iteration, " +
			"uncollected until it fires) and time.Tick anywhere (a Ticker with " +
			"no Stop); use time.NewTimer/NewTicker with defer Stop",
	}
	a.Run = func(pass *Pass) error {
		inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" || !isPackageFunc(f) {
				// Methods are excluded deliberately: time.Time.After is
				// a comparison, not the timer allocator.
				return true
			}
			switch f.Name() {
			case "Tick":
				pass.ReportfFix(call.Pos(), tickFix(call),
					"time.Tick leaks its Ticker (the channel has no Stop handle); use time.NewTicker and defer Stop, as in the reaper pattern")
			case "After":
				if enclosedByLoop(stack) {
					pass.Reportf(call.Pos(),
						"time.After inside a loop allocates a timer every iteration that survives until it fires; hoist a time.NewTimer or NewTicker out of the loop and Stop it")
				}
			}
			return true
		})
		return nil
	}
	return a
}

// tickFix rewrites time.Tick(d) to time.NewTicker(d).C — the exact same
// channel, but with a named constructor a later edit can hoist to grab
// the Stop handle. Behavior-preserving, so it is machine-applicable.
func tickFix(call *ast.CallExpr) []SuggestedFix {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return []SuggestedFix{{
		Message:           "replace time.Tick(d) with time.NewTicker(d).C, then hoist the ticker and defer Stop",
		MachineApplicable: true,
		Edits: []TextEdit{
			{Pos: sel.Sel.Pos(), End: sel.Sel.End(), NewText: "NewTicker"},
			{Pos: call.End(), End: call.End(), NewText: ".C"},
		},
	}}
}

// enclosedByLoop reports whether the innermost enclosing loop/function
// boundary in the ancestor stack is a loop.
func enclosedByLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
