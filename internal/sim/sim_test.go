package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// testProtocol returns a tiny but fully featured protocol.
func testProtocol() Protocol {
	s := osn.DefaultSetup()
	s.NumCautious = 5
	return Protocol{
		Gen:      gen.ErdosRenyi{N: 200, M: 2000},
		Setup:    s,
		Networks: 3,
		Runs:     2,
		K:        15,
		Seed:     rng.NewSeed(42, 43),
		Workers:  2,
	}
}

func TestProtocolValidate(t *testing.T) {
	valid := testProtocol()
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Protocol){
		func(p *Protocol) { p.Gen = nil },
		func(p *Protocol) { p.Setup = nil },
		func(p *Protocol) { p.Networks = 0 },
		func(p *Protocol) { p.Runs = 0 },
		func(p *Protocol) { p.K = 0 },
		func(p *Protocol) { p.Workers = -1 },
		func(p *Protocol) { p.MaxFailures = -1 },
		func(p *Protocol) { p.CellTimeout = -1 },
		func(p *Protocol) { p.Retries = -1 },
	}
	for i, mutate := range cases {
		p := testProtocol()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunProducesAllCells(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	err = Run(context.Background(), p, factories, func(r Record) {
		recs = append(recs, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := p.Networks * p.Runs * len(factories)
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}
	// Every cell present exactly once.
	seen := map[string]int{}
	for _, r := range recs {
		key := r.Policy + "/" + itoa(r.Network) + "/" + itoa(r.Run)
		seen[key]++
		if len(r.Result.Steps) == 0 || len(r.Result.Steps) > p.K {
			t.Errorf("cell %s: %d steps", key, len(r.Result.Steps))
		}
	}
	for k, c := range seen {
		if c != 1 {
			t.Errorf("cell %s seen %d times", k, c)
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	collectSorted := func(workers int) []float64 {
		p := testProtocol()
		p.Workers = workers
		factories, err := DefaultFactories(core.DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		type key struct {
			policy       string
			network, run int
		}
		got := map[key]float64{}
		err = Run(context.Background(), p, factories, func(r Record) {
			got[key{r.Policy, r.Network, r.Run}] = r.Result.Benefit
		})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]key, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.policy != b.policy {
				return a.policy < b.policy
			}
			if a.network != b.network {
				return a.network < b.network
			}
			return a.run < b.run
		})
		out := make([]float64, 0, len(keys))
		for _, k := range keys {
			out = append(out, got[k])
		}
		return out
	}
	seq := collectSorted(1)
	par := collectSorted(3)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, seq[i], par[i])
		}
	}
}

// marshalSortedRecords runs the protocol and returns the full record set
// — traces, journals and all — serialized in (policy, network, run)
// order, so two schedules can be compared byte for byte.
func marshalSortedRecords(t *testing.T, p Protocol, workers int) []byte {
	t.Helper()
	p.Workers = workers
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := Run(context.Background(), p, factories, func(r Record) { recs = append(recs, r) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Network != b.Network {
			return a.Network < b.Network
		}
		return a.Run < b.Run
	})
	out, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunRecordStreamIdenticalAcrossWorkers pins the cell scheduler's
// determinism contract: the sorted record stream is byte-identical
// between Workers=1 and Workers=8, including the single-network shape
// the old per-network fan-out used to serialize.
func TestRunRecordStreamIdenticalAcrossWorkers(t *testing.T) {
	for _, networks := range []int{1, 3} {
		p := testProtocol()
		p.Networks = networks
		p.Runs = 4
		seq := marshalSortedRecords(t, p, 1)
		par := marshalSortedRecords(t, p, 8)
		if !bytes.Equal(seq, par) {
			t.Errorf("Networks=%d: record streams differ between Workers=1 and Workers=8", networks)
		}
	}
}

// TestRunWorkersExceedNetworks exercises a pool wider than the network
// grid — impossible under the old scheduler's Networks clamp — and is
// run under -race in CI to shake out instance-sharing races.
func TestRunWorkersExceedNetworks(t *testing.T) {
	p := testProtocol()
	p.Networks = 2
	p.Runs = 6
	p.Workers = 8
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Run(context.Background(), p, factories, func(Record) { n++ }); err != nil {
		t.Fatal(err)
	}
	if want := p.Networks * p.Runs * len(factories); n != want {
		t.Fatalf("records = %d, want %d", n, want)
	}
}

// TestRunSingleNetworkCancellation cancels mid-run on the Networks=1
// shape, where every worker drains cells of the same memoized instance.
func TestRunSingleNetworkCancellation(t *testing.T) {
	p := testProtocol()
	p.Networks = 1
	p.Runs = 40
	p.Workers = 4
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	err = Run(ctx, p, factories, func(Record) {
		if n.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := n.Load(); got >= int64(p.Runs*len(factories)) {
		t.Errorf("cancellation did not stop the run (%d records)", got)
	}
}

// TestRunWorkersClampMetrics checks the clamp is honored at cell (not
// network) granularity and surfaced through the registry instead of
// silently downgrading.
func TestRunWorkersClampMetrics(t *testing.T) {
	p := testProtocol()
	p.Networks = 2
	p.Runs = 3
	p.Workers = 1000
	reg := obs.New()
	p.Metrics = reg
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(context.Background(), p, factories, func(Record) {}); err != nil {
		t.Fatal(err)
	}
	cells := p.Networks * p.Runs
	if got := reg.Gauge("sim.workers").Value(); got != float64(cells) {
		t.Errorf("sim.workers = %v, want cell count %d", got, cells)
	}
	if got := reg.Gauge("sim.workers_requested").Value(); got != float64(p.Workers) {
		t.Errorf("sim.workers_requested = %v, want %d", got, p.Workers)
	}
	if got := reg.Counter("sim.workers_clamped").Value(); got != 1 {
		t.Errorf("sim.workers_clamped = %d, want 1", got)
	}
}

func TestResolveWorkers(t *testing.T) {
	cases := []struct {
		networks, runs, workers int
		want                    int
		clamped                 bool
	}{
		{1, 30, 8, 8, false},   // the shape the old scheduler serialized
		{1, 4, 8, 4, true},     // explicit request above the cell count
		{2, 3, 6, 6, false},    // exactly the cell count
		{100, 30, 8, 8, false}, // paper grid
	}
	for _, c := range cases {
		p := Protocol{Networks: c.networks, Runs: c.runs, Workers: c.workers}
		got, clamped := p.ResolveWorkers()
		if got != c.want || clamped != c.clamped {
			t.Errorf("ResolveWorkers(networks=%d runs=%d workers=%d) = (%d, %v), want (%d, %v)",
				c.networks, c.runs, c.workers, got, clamped, c.want, c.clamped)
		}
	}
}

func TestRunPairedRealizations(t *testing.T) {
	// Policies within a cell attack the same realization: a policy that
	// requests the same users must obtain the same benefit as itself.
	// Verify pairing by running two identical ABM factories and checking
	// cell-wise equality.
	p := testProtocol()
	abm1, err := ABMFactory(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	abm2, err := ABMFactory(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	abm2.Name = "abm-clone"
	type key struct{ network, run int }
	first := map[key]float64{}
	second := map[key]float64{}
	err = Run(context.Background(), p, []PolicyFactory{abm1, abm2}, func(r Record) {
		k := key{r.Network, r.Run}
		if r.Policy == abm2.Name {
			second[k] = r.Result.Benefit
		} else {
			first[k] = r.Result.Benefit
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range first {
		if second[k] != v {
			t.Fatalf("cell %+v: %v vs %v — realizations not paired", k, v, second[k])
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	p := testProtocol()
	p.Networks = 50 // plenty of work to cancel mid-flight
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	err = Run(ctx, p, factories, func(Record) {
		if n.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := n.Load(); got >= int64(p.Networks*p.Runs*len(factories)) {
		t.Errorf("cancellation did not stop the run (%d records)", got)
	}
}

// TestRunPrefersWorkerErrorOverCancellation pins the error-ordering
// contract: when a worker failure and a context cancellation race — here
// forced by a factory that cancels the external context right before
// failing — Run must surface the worker error, never the secondary
// context.Canceled.
func TestRunPrefersWorkerErrorOverCancellation(t *testing.T) {
	p := testProtocol()
	sentinel := errors.New("factory exploded")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	broken := PolicyFactory{
		Name: "broken",
		New: func(rng.Seed) (core.Policy, error) {
			cancel() // external cancellation arrives with the failure
			return nil, sentinel
		},
	}
	err := Run(ctx, p, []PolicyFactory{broken}, func(Record) {})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the worker error %v", err, sentinel)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v leaked the cancellation instead of the worker error", err)
	}
}

// TestRunOnProgressDelivery counts progress callbacks: exactly one per
// cell, serially, with monotonically increasing Done reaching Total.
func TestRunOnProgressDelivery(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	total := p.Networks * p.Runs * len(factories)
	var events []Progress
	p.OnProgress = func(pr Progress) { events = append(events, pr) }
	collected := 0
	if err := Run(context.Background(), p, factories, func(Record) { collected++ }); err != nil {
		t.Fatal(err)
	}
	if len(events) != total {
		t.Fatalf("got %d progress events, want %d", len(events), total)
	}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Fatalf("event %d: Done = %d, want %d", i, ev.Done, i+1)
		}
		if ev.Total != total {
			t.Fatalf("event %d: Total = %d, want %d", i, ev.Total, total)
		}
		if ev.Policy == "" {
			t.Fatalf("event %d: empty policy name", i)
		}
	}
	if collected != total {
		t.Fatalf("collect saw %d records, want %d", collected, total)
	}
}

// TestRunRecordsMetrics checks that an attached registry receives the
// engine counters, the osn environment counters and the ABM policy
// counters for a full run.
func TestRunRecordsMetrics(t *testing.T) {
	p := testProtocol()
	reg := obs.New()
	p.Metrics = reg
	factories, err := DefaultFactories(core.DefaultWeights(), core.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(context.Background(), p, factories, func(Record) {}); err != nil {
		t.Fatal(err)
	}
	total := int64(p.Networks * p.Runs * len(factories))
	if got := reg.Counter("sim.cells").Value(); got != total {
		t.Errorf("sim.cells = %d, want %d", got, total)
	}
	if got := reg.Histogram("sim.cell_ns").Count(); got != total {
		t.Errorf("sim.cell_ns count = %d, want %d", got, total)
	}
	if got := reg.Histogram("sim.network_ns").Count(); got != int64(p.Networks) {
		t.Errorf("sim.network_ns count = %d, want %d", got, p.Networks)
	}
	if got := reg.Histogram("osn.sample_realization_ns").Count(); got != int64(p.Networks*p.Runs) {
		t.Errorf("osn.sample_realization_ns count = %d, want %d", got, p.Networks*p.Runs)
	}
	for _, name := range []string{"osn.requests", "osn.accepts", "osn.edges_revealed", "abm.heap_pops", "abm.rescores"} {
		if got := reg.Counter(name).Value(); got <= 0 {
			t.Errorf("%s = %d, want > 0", name, got)
		}
	}
	if got := reg.Gauge("sim.workers").Value(); got != float64(p.Workers) {
		t.Errorf("sim.workers = %v, want %d", got, p.Workers)
	}
	if got := reg.Histogram("sim.worker_utilization_pct").Count(); got != 1 {
		t.Errorf("sim.worker_utilization_pct count = %d, want 1 (one Run call)", got)
	}
	if util := reg.Histogram("sim.worker_utilization_pct").Max(); util <= 0 {
		t.Errorf("sim.worker_utilization_pct = %v, want > 0", util)
	}
	if got := reg.Histogram("sim.wall_ns").Count(); got != 1 {
		t.Errorf("sim.wall_ns count = %d, want 1", got)
	}
	// Requests are bounded by the budget: every cell sends at most K.
	if reqs := reg.Counter("osn.requests").Value(); reqs > total*int64(p.K) {
		t.Errorf("osn.requests = %d exceeds cells×K = %d", reqs, total*int64(p.K))
	}
}

func TestRunPropagatesGeneratorError(t *testing.T) {
	p := testProtocol()
	p.Gen = gen.ErdosRenyi{N: 3, M: 100} // invalid: too many edges
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	err = Run(context.Background(), p, factories, func(Record) {})
	if err == nil {
		t.Fatal("want generator error")
	}
	if !errors.Is(err, gen.ErrBadParam) {
		t.Errorf("err = %v, want wrapped ErrBadParam", err)
	}
}

func TestRunPropagatesSetupError(t *testing.T) {
	p := testProtocol()
	p.Gen = gen.ErdosRenyi{N: 50, M: 20} // too sparse for the degree band
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	err = Run(context.Background(), p, factories, func(Record) {})
	if !errors.Is(err, osn.ErrNotEnoughCandidates) {
		t.Errorf("err = %v, want ErrNotEnoughCandidates", err)
	}
}

func TestRunNoFactories(t *testing.T) {
	if err := Run(context.Background(), testProtocol(), nil, func(Record) {}); err == nil {
		t.Error("want error for empty factories")
	}
}

func TestABMFactoryValidation(t *testing.T) {
	if _, err := ABMFactory(core.Weights{WD: -1}); err == nil {
		t.Error("want error for invalid weights")
	}
}

func TestDefaultFactoriesRoster(t *testing.T) {
	fs, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range fs {
		names[f.Name] = true
		pol, err := f.New(rng.NewSeed(1, 1))
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if pol == nil {
			t.Fatalf("%s: nil policy", f.Name)
		}
	}
	for _, want := range []string{"maxdegree", "pagerank", "random", "abm(wD=0.50,wI=0.50)"} {
		if !names[want] {
			t.Errorf("missing factory %q (have %v)", want, names)
		}
	}
}
