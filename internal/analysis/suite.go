package analysis

// NewSuite returns fresh instances of the four accuvet analyzers, in the
// order they report:
//
//	detrand    — no clock / global rand / env reads on the record path
//	maporder   — no order-dependent effects under map iteration
//	seedflow   — one Split per seed consumer
//	metricname — obs metric names match the convention, one kind per name
//
// Instances hold per-run state (metricname's cross-package duplicate
// table), so every checker invocation must call NewSuite rather than
// sharing analyzers globally.
func NewSuite() []*Analyzer {
	return []*Analyzer{
		Detrand(),
		MapOrder(),
		SeedFlow(),
		MetricNames(),
	}
}
