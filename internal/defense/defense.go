// Package defense turns the attack machinery around: the paper's stated
// motivation is that understanding befriending strategies "can in turn
// reveal the key users to protect". This package measures per-user
// vulnerability under repeated simulated attacks and evaluates a
// hardening countermeasure — converting the most-compromised users to
// cautious (threshold-gated) acceptance — against the same attacker.
package defense

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// UserStats accumulates one user's fate across simulated attacks.
type UserStats struct {
	// User is the node id.
	User int
	// Targeted counts runs in which the attacker sent this user a
	// request; Befriended counts accepted requests; Exposed counts runs
	// that ended with the user a friend-of-friend (profile partially
	// readable).
	Targeted, Befriended, Exposed int
}

// Analysis is the result of a vulnerability measurement.
type Analysis struct {
	// Runs is the number of simulated attacks.
	Runs int
	// K is the per-attack request budget.
	K int
	// PerUser holds stats for every user, indexed by node id.
	PerUser []UserStats
	// MeanBenefit is the attacker's average final benefit.
	MeanBenefit float64
}

// PolicyFactory builds a fresh attack policy per run.
type PolicyFactory func(seed rng.Seed) (core.Policy, error)

// ABMAttacker is the default attacker for vulnerability analyses: ABM
// with the paper's balanced weights.
func ABMAttacker() PolicyFactory {
	return func(rng.Seed) (core.Policy, error) {
		return core.NewABM(core.DefaultWeights())
	}
}

// Analyze runs `runs` independent attacks of budget k against fresh
// realizations of the instance and aggregates per-user vulnerability.
func Analyze(ctx context.Context, inst *osn.Instance, attacker PolicyFactory, runs, k int, seed rng.Seed) (*Analysis, error) {
	if runs <= 0 || k <= 0 {
		return nil, fmt.Errorf("defense: runs=%d k=%d must be positive", runs, k)
	}
	if attacker == nil {
		return nil, errors.New("defense: nil attacker factory")
	}
	a := &Analysis{
		Runs:    runs,
		K:       k,
		PerUser: make([]UserStats, inst.N()),
	}
	for u := range a.PerUser {
		a.PerUser[u].User = u
	}
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		runSeed := seed.SplitN("defense-run", i)
		re := inst.SampleRealization(runSeed.Split("realization"))
		pol, err := attacker(runSeed.Split("policy"))
		if err != nil {
			return nil, fmt.Errorf("defense: build attacker: %w", err)
		}
		st := osn.NewState(re)
		if err := pol.Init(st); err != nil {
			return nil, fmt.Errorf("defense: init attacker: %w", err)
		}
		for j := 0; j < k; j++ {
			u, ok := pol.SelectNext(st)
			if !ok {
				break
			}
			out, err := st.Request(u)
			if err != nil {
				return nil, fmt.Errorf("defense: attacker selected invalid user: %w", err)
			}
			pol.Observe(st, out)
			a.PerUser[u].Targeted++
			if out.Accepted {
				a.PerUser[u].Befriended++
			}
		}
		for u := 0; u < inst.N(); u++ {
			if st.IsFOF(u) {
				a.PerUser[u].Exposed++
			}
		}
		a.MeanBenefit += st.Benefit() / float64(runs)
	}
	return a, nil
}

// CompromiseRate returns the fraction of runs in which user u ended up a
// friend of the attacker.
func (a *Analysis) CompromiseRate(u int) float64 {
	return float64(a.PerUser[u].Befriended) / float64(a.Runs)
}

// ExposureRate returns the fraction of runs in which user u ended up a
// friend-of-friend (indirectly exposed).
func (a *Analysis) ExposureRate(u int) float64 {
	return float64(a.PerUser[u].Exposed) / float64(a.Runs)
}

// TopCompromised returns the n users most frequently befriended by the
// attacker, descending (ties toward lower id) — the priority list for
// protection.
func (a *Analysis) TopCompromised(n int) []UserStats {
	out := append([]UserStats(nil), a.PerUser...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Befriended > out[j].Befriended
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// Harden returns a copy of the instance in which the given users are
// converted to cautious acceptance with θ = max(1, round(fraction·deg)).
// Already-cautious users are left unchanged. Note that hardening can
// create edges between cautious users; the simulation handles this even
// though the paper's analysis assumes V_C is independent.
func Harden(inst *osn.Instance, users []int, fraction float64) (*osn.Instance, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("defense: fraction %v not in (0, 1]", fraction)
	}
	p := inst.Params()
	g := inst.Graph()
	for _, u := range users {
		if u < 0 || u >= inst.N() {
			return nil, fmt.Errorf("%w: %d", osn.ErrBadUser, u)
		}
		if p.Kind[u] == osn.Cautious {
			continue
		}
		p.Kind[u] = osn.Cautious
		p.AcceptProb[u] = 0
		th := int(fraction*float64(g.Degree(u)) + 0.5)
		if th < 1 {
			th = 1
		}
		p.Theta[u] = th
		p.QLow[u] = 0
		p.QHigh[u] = 1
	}
	return osn.NewInstance(g, p)
}

// Evaluate measures the attacker's mean benefit against the instance —
// the before/after metric for a hardening intervention.
func Evaluate(ctx context.Context, inst *osn.Instance, attacker PolicyFactory, runs, k int, seed rng.Seed) (float64, error) {
	a, err := Analyze(ctx, inst, attacker, runs, k, seed)
	if err != nil {
		return 0, err
	}
	return a.MeanBenefit, nil
}
