package obs_test

import (
	"context"
	"testing"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
	"github.com/accu-sim/accu/internal/sim"
)

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"abm.heap_pops":       true,
		"sim.worker_busy_ns":  true,
		"osn.sample_realization_ns": true,
		"a.b.c":               true,
		"nodots":              false,
		"CamelCase.x":         false,
		"sim.cell-ns":         false,
		".leading":            false,
		"trailing.":           false,
		"sim..double":         false,
		"":                    false,
		"9starts.with_digit":  false,
	} {
		if got := obs.ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestRegistryNames is the runtime counterpart of the accuvet metricname
// analyzer: it drives a real simulation into a live registry — engine,
// policy and instance instruments included — then walks the snapshot and
// asserts every registered name (including any built dynamically) obeys
// obs.NamePattern.
func TestRegistryNames(t *testing.T) {
	reg := obs.New()
	setup := osn.DefaultSetup()
	setup.NumCautious = 5
	p := sim.Protocol{
		Gen:      gen.ErdosRenyi{N: 150, M: 1200},
		Setup:    setup,
		Networks: 2,
		Runs:     2,
		K:        10,
		Seed:     rng.NewSeed(7, 11),
		Workers:  2,
		Metrics:  reg,
	}
	factories, err := sim.DefaultFactories(core.DefaultWeights(), core.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(context.Background(), p, factories, func(sim.Record) {}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	var names []string
	for _, c := range snap.Counters {
		names = append(names, c.Name)
	}
	for _, g := range snap.Gauges {
		names = append(names, g.Name)
	}
	for _, h := range snap.Histograms {
		names = append(names, h.Name)
	}
	if len(names) == 0 {
		t.Fatal("instrumented run registered no metrics")
	}
	for _, name := range names {
		if !obs.ValidName(name) {
			t.Errorf("live registry holds metric %q, which violates %s", name, obs.NamePattern)
		}
	}
}
